//! The assembled D-NUCA cache: banked tag/data, bubble promotion, and the
//! ss-performance / ss-energy search policies.
//!
//! Slot metadata is kept struct-of-arrays (block indices, valid/dirty
//! flags, and recency clocks in separate flat vectors) so the per-access
//! way scans touch densely packed words, and the set → bank mapping is a
//! precomputed table. The access path performs no heap allocation:
//! smart-search candidates travel as a way bitmask and the multicast /
//! serial-probe loops walk positions directly.

use crate::smart_search::SmartSearchArray;
use crate::stats::DnucaStats;
use cachemodel::catalog::{self, DnucaGeometry, BLOCK_BYTES};
use memsys::lower::{LowerCache, LowerOutcome};
use memsys::memory::MainMemory;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simtel::TelemetrySink;

/// Which of the paper's two separately-optimal D-NUCA policies to run
/// (Section 5.4: ss-performance for the performance comparison, ss-energy
/// for the energy comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchPolicy {
    /// Multicast-search every bank position in parallel; use the
    /// smart-search array only to initiate misses early.
    SsPerformance,
    /// Probe the smart-search array first and access only the banks with
    /// partial-tag matches, nearest first.
    SsEnergy,
    /// Way memoization (after arXiv 0710.4703): remember the way of the
    /// last hit in each set and probe its bank directly, skipping the
    /// smart-search array entirely on a memo hit; fall back to the
    /// serial ss-energy search when the memo misses.
    WayMemo,
}

/// D-NUCA configuration.
#[derive(Debug, Clone, Copy)]
pub struct DnucaConfig {
    /// Total capacity (8 MB in the evaluation).
    pub capacity: Capacity,
    /// Total associativity (16 in the evaluation).
    pub assoc: u32,
    /// Number of banks (128 in the evaluation).
    pub n_banks: usize,
    /// Bank positions per bank set (8 in the evaluation).
    pub n_positions: usize,
    /// Search policy.
    pub policy: SearchPolicy,
}

impl DnucaConfig {
    /// The paper's optimal D-NUCA: 8 MB, 16-way, 128 × 64-KB banks, 8
    /// positions per bank set.
    pub fn micro2003(policy: SearchPolicy) -> Self {
        DnucaConfig {
            capacity: Capacity::from_mib(8),
            assoc: 16,
            n_banks: 128,
            n_positions: 8,
            policy,
        }
    }
}

/// Slot flag: the way holds a block.
const VALID: u8 = 1 << 0;
/// Slot flag: the block has been written since it was filled.
const DIRTY: u8 = 1 << 1;

/// Cycles a bank is occupied by a full (tag + data) access.
const BANK_OCCUPANCY: u64 = 3;
/// Cycles a bank is occupied by a tag-only search.
const SEARCH_OCCUPANCY: u64 = 2;
/// Way-memo entry for a set with no remembered hit.
const MEMO_NONE: u32 = u32::MAX;

/// The D-NUCA cache.
///
/// # Examples
///
/// ```
/// use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
/// use simbase::{AccessKind, BlockAddr, Cycle};
///
/// let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
/// // A cold miss is detected early by the smart-search array (no
/// // partial-tag match anywhere) and fills the slowest bank position.
/// let miss = cache.access_block(BlockAddr::from_index(9), AccessKind::Read, Cycle::ZERO);
/// assert!(!miss.hit);
/// assert_eq!(cache.stats().early_misses.get(), 1);
/// ```
#[derive(Debug)]
pub struct DnucaCache {
    config: DnucaConfig,
    geo: DnucaGeometry,
    /// `sets × assoc` block indices; way `w` of a set lives at bank
    /// position `w / ways_per_position`. `u64::MAX` in empty slots.
    blocks: Vec<u64>,
    /// `sets × assoc` VALID/DIRTY flags.
    flags: Vec<u8>,
    /// `sets × assoc` recency clocks (larger = more recently used).
    last_use: Vec<u64>,
    sets: usize,
    set_mask: u64,
    ways_per_position: u32,
    /// `log2(ways_per_position)` when it is a power of two.
    wpp_shift: Option<u32>,
    /// Bank index by `bank_set * n_positions + position`.
    bank_lut: Vec<u32>,
    /// `n_bank_sets - 1` when the bank-set count is a power of two.
    bank_set_mask: Option<usize>,
    ss: SmartSearchArray,
    /// Per-set way of the last hit ([`MEMO_NONE`] when unknown). Part of
    /// the architectural state and maintained identically under every
    /// search policy (so all policies share warm-up checkpoints); only
    /// [`SearchPolicy::WayMemo`] consults it.
    memo: Vec<u32>,
    /// Per-bank busy-until times (bank contention; the network itself has
    /// infinite bandwidth per Section 4).
    bank_busy: Vec<Cycle>,
    memory: MainMemory,
    stats: DnucaStats,
    use_clock: u64,
    sink: TelemetrySink,
}

impl DnucaCache {
    /// Builds a D-NUCA cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent.
    pub fn new(config: DnucaConfig) -> Self {
        assert!(
            (config.assoc as usize).is_multiple_of(config.n_positions),
            "positions must divide associativity"
        );
        let geo = DnucaGeometry::new(
            cachemodel::Tech::micro2003_70nm(),
            config.capacity,
            config.n_banks,
            config.n_positions,
        );
        let blocks = config.capacity.bytes() / BLOCK_BYTES;
        let sets = (blocks / config.assoc as u64) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let n_bank_sets = geo.n_bank_sets();
        let mut bank_lut = Vec::with_capacity(n_bank_sets * config.n_positions);
        for bs in 0..n_bank_sets {
            for p in 0..config.n_positions {
                bank_lut.push(geo.bank_index(bs, p) as u32);
            }
        }
        let ways_per_position = config.assoc / config.n_positions as u32;
        let n_slots = sets * config.assoc as usize;
        DnucaCache {
            blocks: vec![u64::MAX; n_slots],
            flags: vec![0; n_slots],
            last_use: vec![0; n_slots],
            sets,
            set_mask: sets as u64 - 1,
            ways_per_position,
            wpp_shift: ways_per_position
                .is_power_of_two()
                .then(|| ways_per_position.trailing_zeros()),
            bank_lut,
            bank_set_mask: n_bank_sets.is_power_of_two().then(|| n_bank_sets - 1),
            ss: SmartSearchArray::new(sets, config.assoc),
            memo: vec![MEMO_NONE; sets],
            bank_busy: vec![Cycle::ZERO; config.n_banks],
            memory: MainMemory::micro2003(),
            stats: DnucaStats::new(config.n_positions, config.n_banks),
            geo,
            config,
            use_clock: 0,
            sink: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink, forwarded to the memory channel. Bubble
    /// swaps and smart-search probes are counted; swap occupancy is
    /// emitted as a cycle-stamped span.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.memory.set_telemetry(sink.clone());
        self.sink = sink;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DnucaStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents and bank states are kept).
    /// Used after warm-up, matching the paper's fast-forward methodology.
    /// The memory model's counters — including an attached L4's — reset
    /// with them, so a timed warm-up leaves nothing behind the barrier.
    pub fn reset_stats(&mut self) {
        self.stats = DnucaStats::new(self.config.n_positions, self.config.n_banks);
        self.memory.reset_counters();
    }

    /// The physical geometry.
    pub fn geometry(&self) -> &DnucaGeometry {
        &self.geo
    }

    /// Off-chip accesses (for energy accounting).
    pub fn memory_accesses(&self) -> u64 {
        self.memory.accesses()
    }

    /// Fills every slot (and the smart-search array) with placeholder
    /// blocks, emulating the steady-state occupancy the paper reaches by
    /// fast-forwarding 5 billion instructions. Placeholders use a reserved
    /// address range and zero recency, so they are natural victims.
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty.
    pub fn prefill(&mut self) {
        let sets = self.sets as u64;
        let base = (u64::MAX / 256) / sets * sets;
        for set in 0..self.sets {
            for w in 0..self.config.assoc {
                let block = BlockAddr::from_index(base + set as u64 + w as u64 * sets);
                let i = self.slot_idx(set, w);
                assert!(self.flags[i] & VALID == 0, "prefill on a non-empty cache");
                self.blocks[i] = block.index();
                self.flags[i] = VALID;
                self.last_use[i] = 0;
                self.ss.insert(block, w);
            }
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() & self.set_mask) as usize
    }

    #[inline]
    fn slot_idx(&self, set: usize, w: u32) -> usize {
        set * self.config.assoc as usize + w as usize
    }

    #[inline]
    fn bank_set_of(&self, set: usize) -> usize {
        match self.bank_set_mask {
            Some(m) => set & m,
            None => set % self.geo.n_bank_sets(),
        }
    }

    /// The bank holding way `w` of `set`.
    #[inline]
    fn bank_of(&self, set: usize, w: u32) -> usize {
        let bank_set = self.bank_set_of(set);
        let position = self.position_of_way(w);
        self.bank_lut[bank_set * self.config.n_positions + position] as usize
    }

    #[inline]
    fn position_of_way(&self, w: u32) -> usize {
        match self.wpp_shift {
            Some(s) => (w >> s) as usize,
            None => (w / self.ways_per_position) as usize,
        }
    }

    /// True if way `w` of `set` holds a block (for tests).
    #[cfg(test)]
    fn valid_at(&self, set: usize, w: u32) -> bool {
        self.flags[self.slot_idx(set, w)] & VALID != 0
    }

    /// A full bank access starting no earlier than `t`: waits for the bank,
    /// occupies it, and returns the completion time.
    #[inline]
    fn bank_access(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + BANK_OCCUPANCY;
        self.stats.bank_accesses[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    /// A tag-only search of a bank (multicast leg or false-hit probe).
    #[inline]
    fn bank_search(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + SEARCH_OCCUPANCY;
        self.stats.bank_searches[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    /// Occupies two banks for a bubble swap (the network has infinite
    /// bandwidth, so the swap does not delay this access; the banks are
    /// simply busy for a read + write each).
    fn swap_banks(&mut self, bank_a: usize, bank_b: usize, t: Cycle) {
        for bank in [bank_a, bank_b] {
            let start = t.max(self.bank_busy[bank]);
            self.bank_busy[bank] = start + 2 * BANK_OCCUPANCY;
            self.stats.bank_accesses[bank] += 2; // read + write
        }
        self.stats.swaps.inc();
        if self.sink.enabled() {
            self.sink.count("dnuca.bubble_swaps", 1);
            self.sink.span("dnuca", "bubble_swap", t.raw(), 2 * BANK_OCCUPANCY);
        }
    }

    /// Way holding `block` in `set`, if resident.
    #[inline]
    fn find(&self, set: usize, block: BlockAddr) -> Option<u32> {
        let base = set * self.config.assoc as usize;
        let target = block.index();
        for w in 0..self.config.assoc {
            let i = base + w as usize;
            if self.flags[i] & VALID != 0 && self.blocks[i] == target {
                return Some(w);
            }
        }
        None
    }

    /// LRU way within the position `p` of `set` (the first way with the
    /// smallest `(valid, last_use)` key, so invalid slots win first —
    /// identical to a `min_by_key` over the position's ways).
    fn lru_way_at_position(&self, set: usize, p: usize) -> u32 {
        let lo = p as u32 * self.ways_per_position;
        let mut best = lo;
        let mut best_key = self.recency_key(set, lo);
        for w in lo + 1..lo + self.ways_per_position {
            let key = self.recency_key(set, w);
            if key < best_key {
                best = w;
                best_key = key;
            }
        }
        best
    }

    #[inline]
    fn recency_key(&self, set: usize, w: u32) -> (bool, u64) {
        let i = self.slot_idx(set, w);
        (self.flags[i] & VALID != 0, self.last_use[i])
    }

    /// Architectural half of a bubble promotion: swaps the slot metadata
    /// and the ss entry of way `w` with the LRU way of the adjacent
    /// faster position. Returns the partner way, or `None` at position 0.
    fn bubble_swap_slots(&mut self, set: usize, w: u32) -> Option<u32> {
        let p = self.position_of_way(w);
        if p == 0 {
            return None;
        }
        let other = self.lru_way_at_position(set, p - 1);
        let (a, b) = (self.slot_idx(set, w), self.slot_idx(set, other));
        self.blocks.swap(a, b);
        self.flags.swap(a, b);
        self.last_use.swap(a, b);
        let moved = BlockAddr::from_index(self.blocks[b]);
        self.ss.swap(moved, w, other);
        Some(other)
    }

    /// Bubble promotion: swap the block at way `w` with the LRU way of the
    /// adjacent faster position (Section 2.2's "bubble replacement").
    /// Returns the way the promoted block ends up in (for the way memo).
    fn bubble_promote(&mut self, set: usize, w: u32, t: Cycle) -> u32 {
        match self.bubble_swap_slots(set, w) {
            Some(other) => {
                let bank_w = self.bank_of(set, w);
                let bank_o = self.bank_of(set, other);
                self.swap_banks(bank_w, bank_o, t);
                other
            }
            None => w,
        }
    }

    /// Architectural half of a miss: evict the slowest-way victim (keeping
    /// the ss array in sync) and install `block` there. Returns the dirty
    /// victim block, if any — write-back and bank/memory timing are the
    /// timed caller's business.
    fn install_on_miss(&mut self, block: BlockAddr, kind: AccessKind) -> (u32, Option<BlockAddr>) {
        let set = self.set_of(block);
        let slowest = self.config.n_positions - 1;
        let victim_way = self.lru_way_at_position(set, slowest);
        let vi = self.slot_idx(set, victim_way);
        let mut victim_dirty = None;
        if self.flags[vi] & VALID != 0 {
            let victim_block = BlockAddr::from_index(self.blocks[vi]);
            self.ss.invalidate(victim_block, victim_way);
            if self.flags[vi] & DIRTY != 0 {
                victim_dirty = Some(victim_block);
            }
        }
        self.blocks[vi] = block.index();
        self.flags[vi] = VALID | if kind.is_write() { DIRTY } else { 0 };
        self.last_use[vi] = self.use_clock;
        self.ss.insert(block, victim_way);
        // Eviction invalidates a memo entry pointing at the victim way;
        // the fill itself is not a hit and is not memoized.
        if self.memo[set] == victim_way {
            self.memo[set] = MEMO_NONE;
        }
        (victim_way, victim_dirty)
    }

    /// Handles a miss: fetch from memory and place in the slowest bank,
    /// evicting the block in the slowest way if necessary.
    fn handle_miss(
        &mut self,
        block: BlockAddr,
        kind: AccessKind,
        detect_at: Cycle,
    ) -> LowerOutcome {
        self.stats.misses.inc();
        self.stats.memory_reads.inc();
        let mem_done = self.memory.fill_block(block, BLOCK_BYTES, detect_at);
        let set = self.set_of(block);
        let (victim_way, victim_dirty) = self.install_on_miss(block, kind);
        if let Some(victim) = victim_dirty {
            self.stats.writebacks.inc();
            let _ = self.memory.writeback_block(victim, BLOCK_BYTES, mem_done);
        }
        // The fill is a full access to the slowest bank.
        let bank = self.bank_of(set, victim_way);
        let _ = self.bank_access(bank, mem_done);
        LowerOutcome {
            complete_at: mem_done,
            hit: false,
        }
    }

    /// Marks way `w` of `set` touched by this access (recency + dirtying).
    #[inline]
    fn touch_hit(&mut self, set: usize, w: u32, kind: AccessKind) {
        let i = self.slot_idx(set, w);
        self.last_use[i] = self.use_clock;
        if kind.is_write() {
            self.flags[i] |= DIRTY;
        }
    }

    /// Warm-up access: applies every architectural effect of
    /// [`Self::access_block`] (recency, dirtying, bubble swaps, slowest-way
    /// eviction, ss-array maintenance) while skipping bank contention,
    /// memory timing, and statistics. The effects are identical under both
    /// search policies — search order only changes *when* banks are
    /// probed, never what the probe finds.
    pub fn warm_access_block(&mut self, block: BlockAddr, kind: AccessKind) {
        self.use_clock += 1;
        let set = self.set_of(block);
        match self.find(set, block) {
            Some(w) => {
                self.touch_hit(set, w, kind);
                let other = self.bubble_swap_slots(set, w);
                self.memo[set] = other.unwrap_or(w);
            }
            None => {
                self.memory.warm_fill(block);
                let (_, victim_dirty) = self.install_on_miss(block, kind);
                if let Some(victim) = victim_dirty {
                    self.memory.warm_writeback(victim);
                }
            }
        }
    }

    /// Clears all timing residue (bank busy-until times, memory channel)
    /// without touching cache contents; the drain barrier at the stats
    /// boundary.
    pub fn drain_timing(&mut self) {
        self.bank_busy.fill(Cycle::ZERO);
        self.memory.drain_timing();
    }

    /// Serialises the architectural state: slot metadata, the ss array,
    /// and the recency clock.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64(self.use_clock);
        e.put_u64_slice(&self.blocks);
        e.put_u8_slice(&self.flags);
        e.put_u64_slice(&self.last_use);
        self.ss.save_state(e);
        e.put_u32_slice(&self.memo);
        self.memory.save_l4_state(e);
    }

    /// Restores state written by [`Self::save_state`] into a cache of the
    /// same geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] on a geometry mismatch or a
    /// truncated payload.
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        self.use_clock = d.u64()?;
        let blocks = d.u64_slice()?;
        let flags = d.u8_slice()?;
        let last_use = d.u64_slice()?;
        if blocks.len() != self.blocks.len()
            || flags.len() != self.flags.len()
            || last_use.len() != self.last_use.len()
        {
            return Err(SnapshotError::Malformed("dnuca slot count mismatch"));
        }
        self.blocks = blocks;
        self.flags = flags;
        self.last_use = last_use;
        self.ss.load_state(d)?;
        let memo = d.u32_slice()?;
        if memo.len() != self.memo.len() {
            return Err(SnapshotError::Malformed("dnuca memo length mismatch"));
        }
        self.memo = memo;
        self.memory.load_l4_state(d)
    }

    /// Demand access with the configured search policy.
    pub fn access_block(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.use_clock += 1;
        self.stats.accesses.inc();
        let set = self.set_of(block);
        let ss_done = now + catalog::smart_search_latency_cycles();
        let candidates = self.ss.lookup_mask(block);
        let hit_way = self.find(set, block);

        match self.config.policy {
            SearchPolicy::SsPerformance => {
                self.stats.ss_accesses.inc();
                self.sink.count("dnuca.ss_probes", 1);
                // Multicast: every bank position of this set is searched.
                let bank_set = self.bank_set_of(set);
                let hit_position = hit_way.map(|w| self.position_of_way(w));
                let mut slowest_search = now;
                for p in 0..self.config.n_positions {
                    if hit_position == Some(p) {
                        continue; // the hit bank does a full access below
                    }
                    let bank = self.bank_lut[bank_set * self.config.n_positions + p] as usize;
                    let done = self.bank_search(bank, now);
                    slowest_search = slowest_search.max(done);
                }
                match hit_way {
                    Some(w) => {
                        let p = self.position_of_way(w);
                        self.stats.position_hits.record(p);
                        self.touch_hit(set, w, kind);
                        let bank = self.bank_of(set, w);
                        let done = self.bank_access(bank, now);
                        let fw = self.bubble_promote(set, w, done);
                        self.memo[set] = fw;
                        LowerOutcome {
                            complete_at: done,
                            hit: true,
                        }
                    }
                    None => {
                        // Early miss if the ss array had no candidates;
                        // otherwise the (false) candidates must be ruled
                        // out by the multicast search.
                        let detect_at = if candidates == 0 {
                            self.stats.early_misses.inc();
                            ss_done
                        } else {
                            self.stats.false_hits.add(candidates.count_ones() as u64);
                            slowest_search
                        };
                        self.handle_miss(block, kind, detect_at)
                    }
                }
            }
            SearchPolicy::SsEnergy => {
                self.stats.ss_accesses.inc();
                self.sink.count("dnuca.ss_probes", 1);
                // Probe only candidate positions, nearest first, serially.
                let mut position_mask = 0u64;
                let mut m = candidates;
                while m != 0 {
                    position_mask |= 1 << self.position_of_way(m.trailing_zeros());
                    m &= m - 1;
                }
                let bank_set = self.bank_set_of(set);
                let hit_position = hit_way.map(|w| self.position_of_way(w));
                let mut t = ss_done;
                for p in 0..self.config.n_positions {
                    if position_mask >> p & 1 == 0 {
                        continue;
                    }
                    if hit_position == Some(p) {
                        let w = hit_way.expect("hit_position implies hit_way");
                        self.stats.position_hits.record(p);
                        self.touch_hit(set, w, kind);
                        let bank = self.bank_lut[bank_set * self.config.n_positions + p] as usize;
                        let done = self.bank_access(bank, t);
                        let fw = self.bubble_promote(set, w, done);
                        self.memo[set] = fw;
                        return LowerOutcome {
                            complete_at: done,
                            hit: true,
                        };
                    }
                    // False hit: the partial tag matched but the block is
                    // not here.
                    self.stats.false_hits.inc();
                    let bank = self.bank_lut[bank_set * self.config.n_positions + p] as usize;
                    t = self.bank_search(bank, t);
                }
                if candidates == 0 {
                    self.stats.early_misses.inc();
                }
                self.handle_miss(block, kind, t)
            }
            SearchPolicy::WayMemo => {
                let bank_set = self.bank_set_of(set);
                let hit_position = hit_way.map(|w| self.position_of_way(w));
                self.stats.memo_lookups.inc();
                let mut t = now + catalog::way_memo_latency_cycles();
                let memoized = self.memo[set];
                let memo_position = if memoized == MEMO_NONE {
                    None
                } else {
                    Some(self.position_of_way(memoized))
                };
                if let Some(mp) = memo_position {
                    // Probe the memoized position directly with one full
                    // (tag + data) bank access. On a memo hit the
                    // smart-search array is never consulted — that is the
                    // whole energy win of way memoization.
                    if hit_position == Some(mp) {
                        let w = hit_way.expect("hit_position implies hit_way");
                        self.stats.memo_hits.inc();
                        self.stats.position_hits.record(mp);
                        self.touch_hit(set, w, kind);
                        let bank =
                            self.bank_lut[bank_set * self.config.n_positions + mp] as usize;
                        let done = self.bank_access(bank, t);
                        let fw = self.bubble_promote(set, w, done);
                        self.memo[set] = fw;
                        return LowerOutcome {
                            complete_at: done,
                            hit: true,
                        };
                    }
                    // Memo miss: the speculative full access was wasted
                    // energy and time; fall back to the smart search.
                    let bank = self.bank_lut[bank_set * self.config.n_positions + mp] as usize;
                    t = self.bank_access(bank, t);
                }
                // Serial nearest-first candidate search (as ss-energy),
                // skipping the position the memo probe already ruled out.
                // The ss array was read in parallel with the memo probe.
                self.stats.ss_accesses.inc();
                self.sink.count("dnuca.ss_probes", 1);
                let mut position_mask = 0u64;
                let mut m = candidates;
                while m != 0 {
                    position_mask |= 1 << self.position_of_way(m.trailing_zeros());
                    m &= m - 1;
                }
                t = t.max(ss_done);
                for p in 0..self.config.n_positions {
                    if position_mask >> p & 1 == 0 || memo_position == Some(p) {
                        continue;
                    }
                    if hit_position == Some(p) {
                        let w = hit_way.expect("hit_position implies hit_way");
                        self.stats.position_hits.record(p);
                        self.touch_hit(set, w, kind);
                        let bank =
                            self.bank_lut[bank_set * self.config.n_positions + p] as usize;
                        let done = self.bank_access(bank, t);
                        let fw = self.bubble_promote(set, w, done);
                        self.memo[set] = fw;
                        return LowerOutcome {
                            complete_at: done,
                            hit: true,
                        };
                    }
                    self.stats.false_hits.inc();
                    let bank = self.bank_lut[bank_set * self.config.n_positions + p] as usize;
                    t = self.bank_search(bank, t);
                }
                if candidates == 0 {
                    self.stats.early_misses.inc();
                }
                self.handle_miss(block, kind, t)
            }
        }
    }
}

impl LowerCache for DnucaCache {
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.access_block(block, kind, now)
    }

    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        self.warm_access_block(block, kind);
    }

    fn accesses(&self) -> u64 {
        self.stats.accesses.get()
    }

    fn misses(&self) -> u64 {
        self.stats.misses.get()
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }
}

impl memsys::org::Organization for DnucaCache {
    fn prefill(&mut self) {
        DnucaCache::prefill(self);
    }

    fn reset_stats(&mut self) {
        DnucaCache::reset_stats(self);
    }

    fn set_telemetry(&mut self, sink: &TelemetrySink, _snap_every: u64) {
        DnucaCache::set_telemetry(self, sink.clone());
    }

    fn drain_timing(&mut self) {
        DnucaCache::drain_timing(self);
    }

    fn save_state(&self, e: &mut Encoder) {
        DnucaCache::save_state(self, e);
    }

    fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        DnucaCache::load_state(self, d)
    }

    fn main_memory(&self) -> Option<&memsys::memory::MainMemory> {
        Some(&self.memory)
    }

    fn main_memory_mut(&mut self) -> Option<&mut memsys::memory::MainMemory> {
        Some(&mut self.memory)
    }

    fn report(&self) -> memsys::org::OrgReport {
        let s = self.stats();
        memsys::org::OrgReport {
            l2_accesses: s.accesses.get(),
            l2_misses: s.misses.get(),
            group_fracs: (0..self.geometry().n_bank_positions())
                .map(|p| s.position_access_frac(p))
                .collect(),
            miss_frac: s.miss_frac(),
            dgroup_accesses: s.total_bank_accesses(),
            swaps: s.swaps.get(),
            memory_accesses: s.memory_reads.get() + s.writebacks.get(),
            l2_energy: crate::energy::dynamic_energy(s, self.geometry()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn cache(policy: SearchPolicy) -> DnucaCache {
        DnucaCache::new(DnucaConfig::micro2003(policy))
    }

    #[test]
    fn new_blocks_land_in_the_slowest_position() {
        let mut c = cache(SearchPolicy::SsPerformance);
        c.access_block(blk(1), AccessKind::Read, Cycle::ZERO);
        let hit = c.access_block(blk(1), AccessKind::Read, Cycle::new(10_000));
        assert!(hit.hit);
        assert_eq!(c.stats().position_hits.count(7), 1, "first re-touch is slow");
    }

    #[test]
    fn repeated_hits_bubble_toward_the_fastest_position() {
        let mut c = cache(SearchPolicy::SsPerformance);
        let mut t = Cycle::ZERO;
        c.access_block(blk(1), AccessKind::Read, t);
        // 8 positions: 7 promotions bring the block to position 0.
        for _ in 0..7 {
            t += 10_000;
            let out = c.access_block(blk(1), AccessKind::Read, t);
            assert!(out.hit);
        }
        t += 10_000;
        let out = c.access_block(blk(1), AccessKind::Read, t);
        assert!(out.hit);
        assert_eq!(c.stats().position_hits.count(0), 1);
        assert_eq!(c.stats().swaps.get(), 7);
    }

    #[test]
    fn fast_hits_are_faster_than_slow_hits() {
        let mut c = cache(SearchPolicy::SsPerformance);
        let mut t = Cycle::ZERO;
        c.access_block(blk(1), AccessKind::Read, t);
        t += 10_000;
        let slow = c.access_block(blk(1), AccessKind::Read, t);
        let slow_lat = slow.complete_at - t;
        for _ in 0..7 {
            t += 10_000;
            c.access_block(blk(1), AccessKind::Read, t);
        }
        t += 10_000;
        let fast = c.access_block(blk(1), AccessKind::Read, t);
        let fast_lat = fast.complete_at - t;
        assert!(
            fast_lat < slow_lat / 2,
            "position 0 ({fast_lat}) vs position 7 ({slow_lat})"
        );
    }

    #[test]
    fn hot_set_cannot_hold_more_than_two_fast_ways() {
        // The coupling problem NuRAPID fixes: only ways_per_position (2)
        // blocks of a set can be at position 0.
        let mut c = cache(SearchPolicy::SsPerformance);
        let sets = c.sets as u64;
        let mut t = Cycle::ZERO;
        // Heavily reuse 8 blocks of one set so they all bubble up.
        for _ in 0..20 {
            for b in 0..8u64 {
                let out = c.access_block(blk(1 + b * sets), AccessKind::Read, t);
                t = out.complete_at + 100;
            }
        }
        // Count blocks now resident at position 0 of that set.
        let set = c.set_of(blk(1));
        let fast = (0..2u32).filter(|&w| c.valid_at(set, w)).count();
        assert!(fast <= 2);
        // And the hits must be spread over positions, not all fast.
        let f0 = c.stats().position_access_frac(0);
        assert!(f0 < 0.5, "only {f0} of accesses can be fast in a hot set");
    }

    #[test]
    fn early_miss_detection_with_ss_array() {
        let mut c = cache(SearchPolicy::SsPerformance);
        let out = c.access_block(blk(42), AccessKind::Read, Cycle::ZERO);
        assert!(!out.hit);
        assert_eq!(c.stats().early_misses.get(), 1);
        // Miss initiated at ss latency (2) + memory (194).
        assert_eq!(out.complete_at, Cycle::new(2 + 194));
    }

    #[test]
    fn ss_energy_touches_fewer_banks_than_ss_performance() {
        let run = |policy| {
            let mut c = cache(policy);
            let mut t = Cycle::ZERO;
            for i in 0..2000u64 {
                let out = c.access_block(blk(i % 200), AccessKind::Read, t);
                t = out.complete_at + 50;
            }
            c.stats().total_bank_accesses()
        };
        let perf = run(SearchPolicy::SsPerformance);
        let energy = run(SearchPolicy::SsEnergy);
        assert!(
            energy * 2 < perf,
            "ss-energy {energy} must use far fewer bank accesses than ss-performance {perf}"
        );
    }

    #[test]
    fn miss_rates_are_policy_independent() {
        let run = |policy| {
            let mut c = cache(policy);
            let mut t = Cycle::ZERO;
            for i in 0..20_000u64 {
                let out = c.access_block(blk((i * 37) % 70_000), AccessKind::Read, t);
                t = out.complete_at + 10;
            }
            c.stats().misses.get()
        };
        assert_eq!(run(SearchPolicy::SsPerformance), run(SearchPolicy::SsEnergy));
    }

    #[test]
    fn dirty_evictions_write_back() {
        let mut c = cache(SearchPolicy::SsPerformance);
        let sets = c.sets as u64;
        let mut t = Cycle::ZERO;
        // Write a block; it sits at the slowest position. 16 more fills to
        // the same set cycle through both slowest ways and evict it.
        c.access_block(blk(1), AccessKind::Write, t);
        for i in 1..17u64 {
            t += 10_000;
            c.access_block(blk(1 + i * sets), AccessKind::Read, t);
        }
        assert!(c.stats().writebacks.get() >= 1);
    }

    #[test]
    fn eviction_takes_the_slowest_way_not_the_set_lru() {
        // Paper Section 2.2: "D-NUCA evicts the block in the slowest way
        // of the set. The evicted block may not be the set's LRU block."
        let mut c = cache(SearchPolicy::SsPerformance);
        let sets = c.sets as u64;
        let mut t = Cycle::ZERO;
        // Block A bubbles up to position 6 via hits; block B sits at 7.
        c.access_block(blk(1), AccessKind::Read, t);
        t += 10_000;
        c.access_block(blk(1), AccessKind::Read, t); // A at position 6 now
        t += 10_000;
        c.access_block(blk(1 + sets), AccessKind::Read, t); // B at 7 (way LRU order)
        // B was touched *after* A, so A is the set LRU; but the next two
        // misses must evict from position 7 (B's position), not A.
        t += 10_000;
        c.access_block(blk(1 + 2 * sets), AccessKind::Read, t);
        t += 10_000;
        c.access_block(blk(1 + 3 * sets), AccessKind::Read, t);
        t += 10_000;
        // A must still be resident.
        let out = c.access_block(blk(1), AccessKind::Read, t);
        assert!(out.hit, "promoted block must survive slowest-way eviction");
    }

    #[test]
    fn bank_contention_delays_back_to_back_accesses() {
        let mut c = cache(SearchPolicy::SsPerformance);
        // Two cold misses to the same bank set at the same instant: the
        // multicast searches contend on the banks.
        let sets = c.sets as u64;
        c.access_block(blk(1), AccessKind::Read, Cycle::ZERO);
        c.access_block(blk(1 + sets), AccessKind::Read, Cycle::ZERO);
        // Warm hits, same position/bank, issued simultaneously.
        let t = Cycle::new(50_000);
        let a = c.access_block(blk(1), AccessKind::Read, t);
        let b = c.access_block(blk(1 + sets), AccessKind::Read, t);
        assert!(b.complete_at > a.complete_at, "second access must queue");
    }

    #[test]
    fn lower_cache_interface() {
        let mut c = cache(SearchPolicy::SsEnergy);
        let _ = LowerCache::access(&mut c, blk(9), AccessKind::Read, Cycle::ZERO);
        assert_eq!(c.accesses(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.block_bytes(), 128);
    }

    fn assert_same_arch_state(a: &DnucaCache, b: &DnucaCache) {
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(a.flags, b.flags);
        assert_eq!(a.last_use, b.last_use);
        assert_eq!(a.use_clock, b.use_clock);
        for i in 0..2_000u64 {
            let probe = blk(i * 97);
            assert_eq!(
                a.ss.lookup_mask(probe),
                b.ss.lookup_mask(probe),
                "ss arrays diverged at probe {i}"
            );
        }
    }

    #[test]
    fn warm_access_matches_timed_architectural_state() {
        for policy in [SearchPolicy::SsPerformance, SearchPolicy::SsEnergy] {
            let mut timed = cache(policy);
            let mut warm = cache(policy);
            let sets = timed.sets as u64;
            let mut t = Cycle::ZERO;
            for i in 0..30_000u64 {
                // Strided misses, hot-set reuse (drives bubble swaps), and
                // writes (drives dirty evictions).
                let b = match i % 5 {
                    0 => blk((i * 37) % 70_000),
                    1 => blk(1 + (i % 16) * sets),
                    _ => blk((i * 13) % 9_000),
                };
                let kind = if i % 7 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let out = timed.access_block(b, kind, t);
                warm.warm_access_block(b, kind);
                t = out.complete_at + (i % 40);
            }
            assert_same_arch_state(&timed, &warm);
            // Replay: both must serve the same hit stream from here.
            warm.drain_timing();
            let mut t = Cycle::ZERO;
            for i in 0..5_000u64 {
                let b = blk((i * 29) % 40_000);
                let o1 = timed.access_block(b, AccessKind::Read, t);
                let o2 = warm.access_block(b, AccessKind::Read, t);
                assert_eq!(o1.hit, o2.hit, "replay access {i} diverged ({policy:?})");
                t = o1.complete_at + 10;
            }
        }
    }

    #[test]
    fn state_roundtrips_through_snapshot() {
        let mut c = cache(SearchPolicy::SsPerformance);
        let mut t = Cycle::ZERO;
        for i in 0..20_000u64 {
            let b = blk((i * 37 + i % 3) % 60_000);
            let kind = if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = c.access_block(b, kind, t);
            t = out.complete_at + 5;
        }
        let mut e = Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();

        // Restores into either policy: the snapshot is timing-free.
        let mut restored = cache(SearchPolicy::SsEnergy);
        let mut d = Decoder::new(&bytes);
        restored.load_state(&mut d).expect("load");
        d.finish().expect("no trailing bytes");
        assert_same_arch_state(&c, &restored);

        c.drain_timing();
        let mut t = Cycle::ZERO;
        for i in 0..10_000u64 {
            let b = blk((i * 53) % 50_000);
            let o1 = c.access_block(b, AccessKind::Read, t);
            let o2 = restored.access_block(b, AccessKind::Read, t);
            assert_eq!(o1.hit, o2.hit, "replay access {i} diverged");
            t = o1.complete_at + 10;
        }
    }

    #[test]
    fn load_rejects_geometry_mismatch() {
        let c = cache(SearchPolicy::SsPerformance);
        let mut e = Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut wrong = DnucaCache::new(DnucaConfig {
            capacity: Capacity::from_mib(4),
            ..DnucaConfig::micro2003(SearchPolicy::SsPerformance)
        });
        let mut d = Decoder::new(&bytes);
        assert!(wrong.load_state(&mut d).is_err());
    }
}
