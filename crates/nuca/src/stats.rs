//! Event counters for D-NUCA: per-position hit distribution, bank and
//! smart-search traffic, and swap counts.

use simbase::stats::{BucketDist, Counter};

/// Statistics of one D-NUCA cache instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnucaStats {
    /// Demand hits per bank position (0 = closest).
    pub position_hits: BucketDist,
    /// Demand misses.
    pub misses: Counter,
    /// Total demand accesses.
    pub accesses: Counter,
    /// Full bank accesses (tag + data: demand hits, fills, swap traffic),
    /// indexed by bank.
    pub bank_accesses: Vec<u64>,
    /// Tag-only bank searches (multicast probes that did not return data),
    /// indexed by bank.
    pub bank_searches: Vec<u64>,
    /// Smart-search array probes.
    pub ss_accesses: Counter,
    /// False hits: banks probed because of a partial-tag match that turned
    /// out not to hold the block.
    pub false_hits: Counter,
    /// Bubble swaps performed (each touches two banks).
    pub swaps: Counter,
    /// Misses detected early by the smart-search array (no partial match).
    pub early_misses: Counter,
    /// Off-chip reads.
    pub memory_reads: Counter,
    /// Off-chip writes (dirty evictions).
    pub writebacks: Counter,
    /// Way-memo table lookups (zero under the two smart-search policies).
    pub memo_lookups: Counter,
    /// Way-memo lookups whose remembered position held the block — these
    /// accesses skip the smart-search probe entirely.
    pub memo_hits: Counter,
}

impl DnucaStats {
    /// Creates zeroed statistics for `n_positions` bank positions over
    /// `n_banks` banks.
    pub fn new(n_positions: usize, n_banks: usize) -> Self {
        DnucaStats {
            position_hits: BucketDist::new(n_positions),
            misses: Counter::new(),
            accesses: Counter::new(),
            bank_accesses: vec![0; n_banks],
            bank_searches: vec![0; n_banks],
            ss_accesses: Counter::new(),
            false_hits: Counter::new(),
            swaps: Counter::new(),
            early_misses: Counter::new(),
            memory_reads: Counter::new(),
            writebacks: Counter::new(),
            memo_lookups: Counter::new(),
            memo_hits: Counter::new(),
        }
    }

    /// Fraction of demand accesses that hit at bank position `p`.
    pub fn position_access_frac(&self, p: usize) -> f64 {
        self.position_hits.count(p) as f64 / self.accesses.get().max(1) as f64
    }

    /// Fraction of demand accesses that missed.
    pub fn miss_frac(&self) -> f64 {
        self.misses.frac_of(self.accesses.get())
    }

    /// Total d-group (bank) accesses — full accesses plus tag searches —
    /// the quantity NuRAPID reduces by 61% (paper Section 1).
    pub fn total_bank_accesses(&self) -> u64 {
        self.bank_accesses.iter().sum::<u64>() + self.bank_searches.iter().sum::<u64>()
    }

    /// Fraction of hits to the `mb`-fastest megabyte-equivalent: position
    /// hits aggregated per position (positions are 1 MB each in the
    /// paper's 8-position configuration).
    pub fn hits_at_or_before_position(&self, p: usize) -> u64 {
        (0..=p).map(|i| self.position_hits.count(i)).sum()
    }
}

/// Statistics of one compressed-NUCA cache instance
/// ([`crate::compressed::CompressedNucaCache`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnucaStats {
    /// Demand hits per bank position (0 = the compressed fast position).
    pub position_hits: BucketDist,
    /// Demand misses.
    pub misses: Counter,
    /// Total demand accesses.
    pub accesses: Counter,
    /// Full bank accesses (tag + data), indexed by bank.
    pub bank_accesses: Vec<u64>,
    /// Tag-only bank searches, indexed by bank.
    pub bank_searches: Vec<u64>,
    /// Smart-search array probes.
    pub ss_accesses: Counter,
    /// Banks probed on a partial-tag match that did not hold the block.
    pub false_hits: Counter,
    /// Bubble swaps performed.
    pub swaps: Counter,
    /// Misses detected early by the smart-search array.
    pub early_misses: Counter,
    /// Off-chip reads.
    pub memory_reads: Counter,
    /// Off-chip writes (dirty evictions).
    pub writebacks: Counter,
    /// Hits served from a compressed fast way — each pays one
    /// decompression.
    pub decompressions: Counter,
    /// Promotions into position 0 refused because the block does not
    /// compress to a half frame.
    pub promotion_refusals: Counter,
}

impl CnucaStats {
    /// Creates zeroed statistics for `n_positions` bank positions over
    /// `n_banks` banks.
    pub fn new(n_positions: usize, n_banks: usize) -> Self {
        CnucaStats {
            position_hits: BucketDist::new(n_positions),
            misses: Counter::new(),
            accesses: Counter::new(),
            bank_accesses: vec![0; n_banks],
            bank_searches: vec![0; n_banks],
            ss_accesses: Counter::new(),
            false_hits: Counter::new(),
            swaps: Counter::new(),
            early_misses: Counter::new(),
            memory_reads: Counter::new(),
            writebacks: Counter::new(),
            decompressions: Counter::new(),
            promotion_refusals: Counter::new(),
        }
    }

    /// Fraction of demand accesses that hit at bank position `p`.
    pub fn position_access_frac(&self, p: usize) -> f64 {
        self.position_hits.count(p) as f64 / self.accesses.get().max(1) as f64
    }

    /// Fraction of demand accesses that missed.
    pub fn miss_frac(&self) -> f64 {
        self.misses.frac_of(self.accesses.get())
    }

    /// Total d-group (bank) accesses, full plus tag-only.
    pub fn total_bank_accesses(&self) -> u64 {
        self.bank_accesses.iter().sum::<u64>() + self.bank_searches.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_partition_accesses() {
        let mut s = DnucaStats::new(8, 128);
        for _ in 0..70 {
            s.accesses.inc();
            s.position_hits.record(0);
        }
        for _ in 0..20 {
            s.accesses.inc();
            s.position_hits.record(7);
        }
        for _ in 0..10 {
            s.accesses.inc();
            s.misses.inc();
        }
        let sum: f64 =
            (0..8).map(|p| s.position_access_frac(p)).sum::<f64>() + s.miss_frac();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(s.hits_at_or_before_position(0), 70);
        assert_eq!(s.hits_at_or_before_position(7), 90);
    }

    #[test]
    fn bank_accesses_sum_full_and_searches() {
        let mut s = DnucaStats::new(8, 128);
        s.bank_accesses[3] += 2;
        s.bank_searches[100] += 5;
        assert_eq!(s.total_bank_accesses(), 7);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DnucaStats::new(8, 128);
        assert_eq!(s.miss_frac(), 0.0);
        assert_eq!(s.position_access_frac(0), 0.0);
    }
}
