//! Compressed NUCA: a D-NUCA variant that packs compressed blocks into
//! the fastest bank position (after the compressed-NUCA line of work
//! surveyed in arXiv 2201.00774).
//!
//! The geometry is the paper's D-NUCA — 8 MB, 128 banks, 8 bank positions
//! per bank set, two full-frame ways per position — except position 0,
//! whose two frames are split into **four half-frame compressed ways**.
//! Only blocks the [`crate::compress::CompressModel`] classifies as
//! compressible (≤ 64 B of a 128-B frame) may be promoted into them, and
//! every hit there pays a fixed decompression latency. The effect the
//! organization is after: more distinct blocks resident in the fastest
//! d-group than the uncompressed baseline can hold, at a small
//! decompression tax — so its position-0 residency should beat D-NUCA's
//! on the same trace.
//!
//! Search is multicast (as D-NUCA's ss-performance policy): the
//! smart-search array initiates misses early while every position of the
//! set is probed in parallel. Promotion is **distance-associative** for
//! compressible blocks — one hit swaps the block straight into the LRU
//! compressed way of position 0, however far out it sits — and bubble
//! promotion with a position-1 floor for incompressible blocks; misses
//! install raw into the slowest position, exactly as D-NUCA.
//!
//! The hot path keeps the flat-arena idioms of [`crate::cache`]:
//! struct-of-arrays slot metadata, a precomputed set → bank table, and
//! bitmask smart-search candidates — no heap allocation per access.

use crate::compress::CompressModel;
use crate::smart_search::SmartSearchArray;
use crate::stats::CnucaStats;
use cachemodel::catalog::{self, DnucaGeometry, BLOCK_BYTES};
use memsys::lower::{LowerCache, LowerOutcome};
use memsys::memory::MainMemory;
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simtel::TelemetrySink;

/// Compressed-NUCA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnucaConfig {
    /// Raw (uncompressed) capacity — 8 MB in the evaluation.
    pub capacity: Capacity,
    /// Raw associativity (full-frame ways per set; position 0 doubles its
    /// share into half-frame compressed ways).
    pub assoc: u32,
    /// Number of banks.
    pub n_banks: usize,
    /// Bank positions per bank set.
    pub n_positions: usize,
    /// Seed of the address-seeded compressibility model. Architectural:
    /// it decides which blocks may occupy the fast compressed ways.
    pub comp_seed: u64,
    /// Decompression latency a compressed-way hit pays, in cycles.
    /// Timing-only: it never changes an architectural transition.
    pub decomp_cycles: u64,
}

impl CnucaConfig {
    /// The evaluation configuration: D-NUCA's 8 MB / 16-way / 128-bank /
    /// 8-position geometry with the catalog's decompressor latency.
    pub fn micro2003() -> Self {
        CnucaConfig {
            capacity: Capacity::from_mib(8),
            assoc: 16,
            n_banks: 128,
            n_positions: 8,
            comp_seed: 0xC0DEC,
            decomp_cycles: catalog::decompressor_latency_cycles(),
        }
    }
}

/// Slot flag: the way holds a block.
const VALID: u8 = 1 << 0;
/// Slot flag: the block has been written since it was filled.
const DIRTY: u8 = 1 << 1;
/// Cycles a bank is occupied by a full (tag + data) access.
const BANK_OCCUPANCY: u64 = 3;
/// Cycles a bank is occupied by a tag-only search.
const SEARCH_OCCUPANCY: u64 = 2;

/// The compressed-NUCA cache.
///
/// # Examples
///
/// ```
/// use nuca::compressed::{CnucaConfig, CompressedNucaCache};
/// use simbase::{AccessKind, BlockAddr, Cycle};
///
/// let mut cache = CompressedNucaCache::new(CnucaConfig::micro2003());
/// let miss = cache.access_block(BlockAddr::from_index(9), AccessKind::Read, Cycle::ZERO);
/// assert!(!miss.hit);
/// let hit = cache.access_block(BlockAddr::from_index(9), AccessKind::Read, Cycle::new(10_000));
/// assert!(hit.hit);
/// ```
#[derive(Debug)]
pub struct CompressedNucaCache {
    config: CnucaConfig,
    geo: DnucaGeometry,
    model: CompressModel,
    /// `sets × ways()` block indices (`u64::MAX` in empty slots). Ways
    /// `0..2·wpp` are the half-frame compressed ways of position 0; way
    /// `2·wpp + k` is full-frame way `k` of positions 1….
    blocks: Vec<u64>,
    /// `sets × ways()` VALID/DIRTY flags.
    flags: Vec<u8>,
    /// `sets × ways()` recency clocks.
    last_use: Vec<u64>,
    sets: usize,
    set_mask: u64,
    /// Full-frame ways per position (position 0 holds twice as many
    /// half-frame ways).
    ways_per_position: u32,
    /// Total logical ways per set: `2·wpp + (n_positions − 1)·wpp`.
    n_ways: u32,
    /// Bank index by `bank_set * n_positions + position`.
    bank_lut: Vec<u32>,
    bank_set_mask: Option<usize>,
    ss: SmartSearchArray,
    /// Per-bank busy-until times.
    bank_busy: Vec<Cycle>,
    memory: MainMemory,
    stats: CnucaStats,
    use_clock: u64,
    sink: TelemetrySink,
}

impl CompressedNucaCache {
    /// Builds a compressed-NUCA cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent.
    pub fn new(config: CnucaConfig) -> Self {
        assert!(
            (config.assoc as usize).is_multiple_of(config.n_positions),
            "positions must divide associativity"
        );
        let geo = DnucaGeometry::new(
            cachemodel::Tech::micro2003_70nm(),
            config.capacity,
            config.n_banks,
            config.n_positions,
        );
        let blocks = config.capacity.bytes() / BLOCK_BYTES;
        let sets = (blocks / config.assoc as u64) as usize;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let n_bank_sets = geo.n_bank_sets();
        let mut bank_lut = Vec::with_capacity(n_bank_sets * config.n_positions);
        for bs in 0..n_bank_sets {
            for p in 0..config.n_positions {
                bank_lut.push(geo.bank_index(bs, p) as u32);
            }
        }
        let wpp = config.assoc / config.n_positions as u32;
        let n_ways = 2 * wpp + (config.n_positions as u32 - 1) * wpp;
        assert!(n_ways <= 64, "smart-search masks are 64-bit");
        let n_slots = sets * n_ways as usize;
        CompressedNucaCache {
            blocks: vec![u64::MAX; n_slots],
            flags: vec![0; n_slots],
            last_use: vec![0; n_slots],
            sets,
            set_mask: sets as u64 - 1,
            ways_per_position: wpp,
            n_ways,
            bank_lut,
            bank_set_mask: n_bank_sets.is_power_of_two().then(|| n_bank_sets - 1),
            ss: SmartSearchArray::new(sets, n_ways),
            bank_busy: vec![Cycle::ZERO; config.n_banks],
            memory: MainMemory::micro2003(),
            stats: CnucaStats::new(config.n_positions, config.n_banks),
            model: CompressModel::new(config.comp_seed),
            geo,
            config,
            use_clock: 0,
            sink: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink, forwarded to the memory channel.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.memory.set_telemetry(sink.clone());
        self.sink = sink;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CnucaStats {
        &self.stats
    }

    /// Zeroes the statistics (cache contents and bank states are kept).
    /// The memory model's counters — including an attached L4's — reset
    /// with them, so a timed warm-up leaves nothing behind the barrier.
    pub fn reset_stats(&mut self) {
        self.stats = CnucaStats::new(self.config.n_positions, self.config.n_banks);
        self.memory.reset_counters();
    }

    /// The physical geometry.
    pub fn geometry(&self) -> &DnucaGeometry {
        &self.geo
    }

    /// The compressibility model.
    pub fn model(&self) -> &CompressModel {
        &self.model
    }

    /// Logical ways per set (compressed half-frame ways included).
    pub fn ways(&self) -> u32 {
        self.n_ways
    }

    /// Off-chip accesses (for energy accounting).
    pub fn memory_accesses(&self) -> u64 {
        self.memory.accesses()
    }

    /// Number of half-frame compressed ways per set (the position-0 ways).
    #[inline]
    fn fast_ways(&self) -> u32 {
        2 * self.ways_per_position
    }

    /// Fills every slot (and the smart-search array) with placeholder
    /// blocks from the reserved range, scanning forward per set so the
    /// compressed position-0 ways receive compressible placeholders.
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty.
    pub fn prefill(&mut self) {
        let sets = self.sets as u64;
        let base = (u64::MAX / 256) / sets * sets;
        for set in 0..self.sets {
            let mut k = 0u64;
            for w in 0..self.n_ways {
                let block = loop {
                    let b = BlockAddr::from_index(base + set as u64 + k * sets);
                    k += 1;
                    if w >= self.fast_ways() || self.model.is_compressible(b) {
                        break b;
                    }
                };
                let i = self.slot_idx(set, w);
                assert!(self.flags[i] & VALID == 0, "prefill on a non-empty cache");
                self.blocks[i] = block.index();
                self.flags[i] = VALID;
                self.last_use[i] = 0;
                self.ss.insert(block, w);
            }
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() & self.set_mask) as usize
    }

    #[inline]
    fn slot_idx(&self, set: usize, w: u32) -> usize {
        set * self.n_ways as usize + w as usize
    }

    #[inline]
    fn bank_set_of(&self, set: usize) -> usize {
        match self.bank_set_mask {
            Some(m) => set & m,
            None => set % self.geo.n_bank_sets(),
        }
    }

    /// Bank position of logical way `w`: the first `2·wpp` ways are the
    /// compressed position 0, the rest map `wpp` per position.
    #[inline]
    fn position_of_way(&self, w: u32) -> usize {
        if w < self.fast_ways() {
            0
        } else {
            1 + ((w - self.fast_ways()) / self.ways_per_position) as usize
        }
    }

    /// The ways of `set` at position `p` as `(first, count)`.
    #[inline]
    fn ways_at_position(&self, p: usize) -> (u32, u32) {
        if p == 0 {
            (0, self.fast_ways())
        } else {
            (
                self.fast_ways() + (p as u32 - 1) * self.ways_per_position,
                self.ways_per_position,
            )
        }
    }

    /// The bank holding way `w` of `set`.
    #[inline]
    fn bank_of(&self, set: usize, w: u32) -> usize {
        let bank_set = self.bank_set_of(set);
        let position = self.position_of_way(w);
        self.bank_lut[bank_set * self.config.n_positions + position] as usize
    }

    /// A full bank access starting no earlier than `t`.
    #[inline]
    fn bank_access(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + BANK_OCCUPANCY;
        self.stats.bank_accesses[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    /// A tag-only search of a bank.
    #[inline]
    fn bank_search(&mut self, bank: usize, t: Cycle) -> Cycle {
        let start = t.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + SEARCH_OCCUPANCY;
        self.stats.bank_searches[bank] += 1;
        start + self.geo.bank_latency_cycles(bank)
    }

    /// Occupies two banks for a bubble swap.
    fn swap_banks(&mut self, bank_a: usize, bank_b: usize, t: Cycle) {
        for bank in [bank_a, bank_b] {
            let start = t.max(self.bank_busy[bank]);
            self.bank_busy[bank] = start + 2 * BANK_OCCUPANCY;
            self.stats.bank_accesses[bank] += 2; // read + write
        }
        self.stats.swaps.inc();
        if self.sink.enabled() {
            self.sink.count("cnuca.bubble_swaps", 1);
            self.sink.span("cnuca", "bubble_swap", t.raw(), 2 * BANK_OCCUPANCY);
        }
    }

    /// Way holding `block` in `set`, if resident.
    #[inline]
    fn find(&self, set: usize, block: BlockAddr) -> Option<u32> {
        let base = set * self.n_ways as usize;
        let target = block.index();
        for w in 0..self.n_ways {
            let i = base + w as usize;
            if self.flags[i] & VALID != 0 && self.blocks[i] == target {
                return Some(w);
            }
        }
        None
    }

    /// LRU way within position `p` of `set` (invalid slots win first).
    fn lru_way_at_position(&self, set: usize, p: usize) -> u32 {
        let (lo, n) = self.ways_at_position(p);
        let mut best = lo;
        let mut best_key = self.recency_key(set, lo);
        for w in lo + 1..lo + n {
            let key = self.recency_key(set, w);
            if key < best_key {
                best = w;
                best_key = key;
            }
        }
        best
    }

    #[inline]
    fn recency_key(&self, set: usize, w: u32) -> (bool, u64) {
        let i = self.slot_idx(set, w);
        (self.flags[i] & VALID != 0, self.last_use[i])
    }

    /// Architectural half of a promotion. Compressible blocks promote
    /// **distance-associatively**: a hit anywhere swaps the block
    /// straight into the LRU compressed way of position 0 (placement is
    /// decoupled from the tag position, as in NuRAPID). Incompressible
    /// blocks bubble one hop toward position 1 and are refused the final
    /// hop into the compressed ways. Returns the partner way when a swap
    /// happened.
    fn bubble_swap_slots(&mut self, set: usize, w: u32) -> Option<u32> {
        let p = self.position_of_way(w);
        if p == 0 {
            return None;
        }
        let block = BlockAddr::from_index(self.blocks[self.slot_idx(set, w)]);
        let target = if self.model.is_compressible(block) {
            0
        } else if p == 1 {
            return None;
        } else {
            p - 1
        };
        let other = self.lru_way_at_position(set, target);
        let (a, b) = (self.slot_idx(set, w), self.slot_idx(set, other));
        self.blocks.swap(a, b);
        self.flags.swap(a, b);
        self.last_use.swap(a, b);
        let moved = BlockAddr::from_index(self.blocks[b]);
        self.ss.swap(moved, w, other);
        Some(other)
    }

    /// Promotion with bank timing; counts refused position-0 hops.
    fn bubble_promote(&mut self, set: usize, w: u32, t: Cycle) {
        match self.bubble_swap_slots(set, w) {
            Some(other) => {
                let bank_w = self.bank_of(set, w);
                let bank_o = self.bank_of(set, other);
                self.swap_banks(bank_w, bank_o, t);
            }
            None => {
                if self.position_of_way(w) == 1 {
                    self.stats.promotion_refusals.inc();
                }
            }
        }
    }

    /// Architectural half of a miss: evict the slowest-position LRU way
    /// and install `block` there (raw — compression only buys fast-way
    /// residency, never extra slow-way capacity).
    fn install_on_miss(&mut self, block: BlockAddr, kind: AccessKind) -> (u32, Option<BlockAddr>) {
        let set = self.set_of(block);
        let slowest = self.config.n_positions - 1;
        let victim_way = self.lru_way_at_position(set, slowest);
        let vi = self.slot_idx(set, victim_way);
        let mut victim_dirty = None;
        if self.flags[vi] & VALID != 0 {
            let victim_block = BlockAddr::from_index(self.blocks[vi]);
            self.ss.invalidate(victim_block, victim_way);
            if self.flags[vi] & DIRTY != 0 {
                victim_dirty = Some(victim_block);
            }
        }
        self.blocks[vi] = block.index();
        self.flags[vi] = VALID | if kind.is_write() { DIRTY } else { 0 };
        self.last_use[vi] = self.use_clock;
        self.ss.insert(block, victim_way);
        (victim_way, victim_dirty)
    }

    /// Handles a miss: fetch from memory and fill the slowest position.
    fn handle_miss(
        &mut self,
        block: BlockAddr,
        kind: AccessKind,
        detect_at: Cycle,
    ) -> LowerOutcome {
        self.stats.misses.inc();
        self.stats.memory_reads.inc();
        let mem_done = self.memory.fill_block(block, BLOCK_BYTES, detect_at);
        let set = self.set_of(block);
        let (victim_way, victim_dirty) = self.install_on_miss(block, kind);
        if let Some(victim) = victim_dirty {
            self.stats.writebacks.inc();
            let _ = self.memory.writeback_block(victim, BLOCK_BYTES, mem_done);
        }
        let bank = self.bank_of(set, victim_way);
        let _ = self.bank_access(bank, mem_done);
        LowerOutcome {
            complete_at: mem_done,
            hit: false,
        }
    }

    /// Marks way `w` of `set` touched by this access.
    #[inline]
    fn touch_hit(&mut self, set: usize, w: u32, kind: AccessKind) {
        let i = self.slot_idx(set, w);
        self.last_use[i] = self.use_clock;
        if kind.is_write() {
            self.flags[i] |= DIRTY;
        }
    }

    /// Warm-up access: every architectural effect of
    /// [`Self::access_block`] without bank contention, memory timing, or
    /// statistics.
    pub fn warm_access_block(&mut self, block: BlockAddr, kind: AccessKind) {
        self.use_clock += 1;
        let set = self.set_of(block);
        match self.find(set, block) {
            Some(w) => {
                self.touch_hit(set, w, kind);
                let _ = self.bubble_swap_slots(set, w);
            }
            None => {
                self.memory.warm_fill(block);
                let (_, victim_dirty) = self.install_on_miss(block, kind);
                if let Some(victim) = victim_dirty {
                    self.memory.warm_writeback(victim);
                }
            }
        }
    }

    /// Clears all timing residue without touching cache contents.
    pub fn drain_timing(&mut self) {
        self.bank_busy.fill(Cycle::ZERO);
        self.memory.drain_timing();
    }

    /// Serialises the architectural state. The compressibility model is
    /// pure (seed lives in the config), so only slots, the ss array, and
    /// the recency clock are stored.
    pub fn save_state(&self, e: &mut Encoder) {
        e.put_u64(self.use_clock);
        e.put_u64_slice(&self.blocks);
        e.put_u8_slice(&self.flags);
        e.put_u64_slice(&self.last_use);
        self.ss.save_state(e);
        self.memory.save_l4_state(e);
    }

    /// Restores state written by [`Self::save_state`] into a cache of the
    /// same geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] on a geometry mismatch or a
    /// truncated payload.
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        self.use_clock = d.u64()?;
        let blocks = d.u64_slice()?;
        let flags = d.u8_slice()?;
        let last_use = d.u64_slice()?;
        if blocks.len() != self.blocks.len()
            || flags.len() != self.flags.len()
            || last_use.len() != self.last_use.len()
        {
            return Err(SnapshotError::Malformed("cnuca slot count mismatch"));
        }
        self.blocks = blocks;
        self.flags = flags;
        self.last_use = last_use;
        self.ss.load_state(d)?;
        self.memory.load_l4_state(d)
    }

    /// Demand access: multicast search (as D-NUCA ss-performance), with
    /// decompression latency charged on compressed-way hits.
    pub fn access_block(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.use_clock += 1;
        self.stats.accesses.inc();
        self.stats.ss_accesses.inc();
        self.sink.count("cnuca.ss_probes", 1);
        let set = self.set_of(block);
        let ss_done = now + catalog::smart_search_latency_cycles();
        let candidates = self.ss.lookup_mask(block);
        let hit_way = self.find(set, block);

        // Multicast: every bank position of this set is searched.
        let bank_set = self.bank_set_of(set);
        let hit_position = hit_way.map(|w| self.position_of_way(w));
        let mut slowest_search = now;
        for p in 0..self.config.n_positions {
            if hit_position == Some(p) {
                continue; // the hit bank does a full access below
            }
            let bank = self.bank_lut[bank_set * self.config.n_positions + p] as usize;
            let done = self.bank_search(bank, now);
            slowest_search = slowest_search.max(done);
        }
        match hit_way {
            Some(w) => {
                let p = self.position_of_way(w);
                self.stats.position_hits.record(p);
                self.touch_hit(set, w, kind);
                let bank = self.bank_of(set, w);
                let mut done = self.bank_access(bank, now);
                if p == 0 {
                    // Position-0 residents are stored compressed; the hit
                    // pays the decompressor before data is usable.
                    self.stats.decompressions.inc();
                    done += self.config.decomp_cycles;
                }
                self.bubble_promote(set, w, done);
                LowerOutcome {
                    complete_at: done,
                    hit: true,
                }
            }
            None => {
                let detect_at = if candidates == 0 {
                    self.stats.early_misses.inc();
                    ss_done
                } else {
                    self.stats.false_hits.add(candidates.count_ones() as u64);
                    slowest_search
                };
                self.handle_miss(block, kind, detect_at)
            }
        }
    }
}

impl LowerCache for CompressedNucaCache {
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        self.access_block(block, kind, now)
    }

    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        self.warm_access_block(block, kind);
    }

    fn accesses(&self) -> u64 {
        self.stats.accesses.get()
    }

    fn misses(&self) -> u64 {
        self.stats.misses.get()
    }

    fn block_bytes(&self) -> u64 {
        BLOCK_BYTES
    }
}

impl memsys::org::Organization for CompressedNucaCache {
    fn prefill(&mut self) {
        CompressedNucaCache::prefill(self);
    }

    fn reset_stats(&mut self) {
        CompressedNucaCache::reset_stats(self);
    }

    fn set_telemetry(&mut self, sink: &TelemetrySink, _snap_every: u64) {
        CompressedNucaCache::set_telemetry(self, sink.clone());
    }

    fn drain_timing(&mut self) {
        CompressedNucaCache::drain_timing(self);
    }

    fn save_state(&self, e: &mut Encoder) {
        CompressedNucaCache::save_state(self, e);
    }

    fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        CompressedNucaCache::load_state(self, d)
    }

    fn main_memory(&self) -> Option<&memsys::memory::MainMemory> {
        Some(&self.memory)
    }

    fn main_memory_mut(&mut self) -> Option<&mut memsys::memory::MainMemory> {
        Some(&mut self.memory)
    }

    fn report(&self) -> memsys::org::OrgReport {
        let s = self.stats();
        memsys::org::OrgReport {
            l2_accesses: s.accesses.get(),
            l2_misses: s.misses.get(),
            group_fracs: (0..self.geometry().n_bank_positions())
                .map(|p| s.position_access_frac(p))
                .collect(),
            miss_frac: s.miss_frac(),
            dgroup_accesses: s.total_bank_accesses(),
            swaps: s.swaps.get(),
            memory_accesses: s.memory_reads.get() + s.writebacks.get(),
            l2_energy: crate::energy::cnuca_dynamic_energy(s, self.geometry()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn cache() -> CompressedNucaCache {
        CompressedNucaCache::new(CnucaConfig::micro2003())
    }

    /// First block index ≥ `from` whose compressibility matches `want`.
    fn block_with(c: &CompressedNucaCache, from: u64, want: bool) -> BlockAddr {
        (from..from + 10_000)
            .map(BlockAddr::from_index)
            .find(|&b| c.model().is_compressible(b) == want)
            .expect("the model produces both classes")
    }

    fn hammer(c: &mut CompressedNucaCache, b: BlockAddr, n: u32) {
        let mut t = Cycle::ZERO;
        for _ in 0..n {
            c.access_block(b, AccessKind::Read, t);
            t += 10_000;
        }
    }

    #[test]
    fn eighteen_logical_ways_in_the_evaluation_config() {
        let c = cache();
        assert_eq!(c.ways(), 18);
        assert_eq!(c.position_of_way(0), 0);
        assert_eq!(c.position_of_way(3), 0);
        assert_eq!(c.position_of_way(4), 1);
        assert_eq!(c.position_of_way(17), 7);
    }

    #[test]
    fn compressible_blocks_jump_straight_to_position_zero() {
        let mut c = cache();
        let b = block_with(&c, 0, true);
        // Fill at the slowest position, then one distance-associative
        // promotion: the second access hits at position 7, every later
        // one at position 0.
        hammer(&mut c, b, 4);
        assert_eq!(c.stats().position_hits.count(7), 1);
        assert_eq!(c.stats().position_hits.count(0), 2);
        assert_eq!(c.stats().decompressions.get(), 2);
        assert_eq!(c.stats().promotion_refusals.get(), 0);
    }

    #[test]
    fn incompressible_blocks_are_refused_at_position_one() {
        let mut c = cache();
        let b = block_with(&c, 0, false);
        hammer(&mut c, b, 12);
        assert_eq!(c.stats().position_hits.count(0), 0, "raw block in p0");
        assert!(c.stats().position_hits.count(1) >= 1, "never reached p1");
        assert!(c.stats().promotion_refusals.get() >= 1);
        assert_eq!(c.stats().decompressions.get(), 0);
    }

    #[test]
    fn compressed_hits_pay_the_decompressor() {
        let mut c = cache();
        let b = block_with(&c, 0, true);
        hammer(&mut c, b, 9); // resident at position 0 by now
        let before = c.stats().decompressions.get();
        let out = c.access_block(b, AccessKind::Read, Cycle::new(1_000_000));
        assert!(out.hit);
        assert_eq!(c.stats().decompressions.get(), before + 1);
        let fast_bank = c.bank_of(c.set_of(b), 0);
        let expected = Cycle::new(1_000_000)
            + c.geometry().bank_latency_cycles(fast_bank)
            + c.config.decomp_cycles;
        assert_eq!(out.complete_at, expected);
    }

    #[test]
    fn warm_path_matches_timed_path_architecturally() {
        let kinds = [AccessKind::Read, AccessKind::Write];
        let mut timed = cache();
        let mut warm = cache();
        let mut t = Cycle::ZERO;
        for i in 0..40_000u64 {
            let b = blk((i * 97) % 9000);
            let k = kinds[(i % 3 == 0) as usize];
            timed.access_block(b, k, t);
            t += 50;
            warm.warm_access_block(b, k);
        }
        assert_eq!(timed.blocks, warm.blocks);
        assert_eq!(timed.flags, warm.flags);
        assert_eq!(timed.last_use, warm.last_use);
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut c = cache();
        c.prefill();
        let mut t = Cycle::ZERO;
        for i in 0..5_000u64 {
            c.access_block(blk((i * 31) % 4000), AccessKind::Read, t);
            t += 100;
        }
        let mut e = Encoder::new();
        c.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut restored = cache();
        restored
            .load_state(&mut Decoder::new(&bytes))
            .expect("round trip");
        restored.drain_timing();
        c.drain_timing();
        // Continue both identically: outcomes must match exactly.
        for i in 0..2_000u64 {
            let b = blk((i * 17) % 4000);
            let a = c.access_block(b, AccessKind::Read, t);
            let r = restored.access_block(b, AccessKind::Read, t);
            assert_eq!(a, r, "diverged at access {i}");
            t += 100;
        }
    }

    #[test]
    fn prefill_puts_compressible_placeholders_in_fast_ways() {
        let mut c = cache();
        c.prefill();
        for set in [0usize, 1, 777, 4095] {
            for w in 0..c.fast_ways() {
                let b = BlockAddr::from_index(c.blocks[c.slot_idx(set, w)]);
                assert!(c.model().is_compressible(b), "raw placeholder in p0");
            }
        }
    }

    #[test]
    fn load_state_rejects_wrong_geometry() {
        let small = CompressedNucaCache::new(CnucaConfig {
            capacity: Capacity::from_mib(1),
            assoc: 16,
            n_banks: 16,
            n_positions: 8,
            comp_seed: 1,
            decomp_cycles: 2,
        });
        let mut e = Encoder::new();
        small.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut big = cache();
        assert!(big.load_state(&mut Decoder::new(&bytes)).is_err());
    }
}
