//! Dynamic-energy pricing of the D-NUCA cache: event counts × the
//! per-operation energies of [`cachemodel::catalog`] (Table 2).
//!
//! Lives here (rather than in the `energy` crate) so the cache can price
//! itself for [`memsys::org::Organization::report`]; `energy::l2` keeps a
//! delegating wrapper for its public API.

use crate::stats::{CnucaStats, DnucaStats};
use cachemodel::catalog::{self, DnucaGeometry};
use simbase::EnergyNj;

/// Dynamic energy of a D-NUCA cache over a run: smart-search probes, full
/// bank accesses (demand, fills, swaps) and tag-only searches, each at
/// the bank's network-distance-dependent cost, plus way-memo lookups for
/// the memoized search policy (zero under the two smart-search policies).
pub fn dynamic_energy(stats: &DnucaStats, geo: &DnucaGeometry) -> EnergyNj {
    let mut e = catalog::smart_search_energy() * stats.ss_accesses.get();
    for b in 0..geo.n_banks() {
        e += geo.bank_access_energy(b) * stats.bank_accesses[b];
        e += geo.bank_search_energy(b) * stats.bank_searches[b];
    }
    e += catalog::way_memo_energy() * stats.memo_lookups.get();
    e
}

/// Dynamic energy of a compressed-NUCA cache over a run: the D-NUCA
/// multicast terms (smart-search probes, full bank accesses, tag-only
/// searches) plus one decompressor activation per compressed-way hit.
pub fn cnuca_dynamic_energy(stats: &CnucaStats, geo: &DnucaGeometry) -> EnergyNj {
    let mut e = catalog::smart_search_energy() * stats.ss_accesses.get();
    for b in 0..geo.n_banks() {
        e += geo.bank_access_energy(b) * stats.bank_accesses[b];
        e += geo.bank_search_energy(b) * stats.bank_searches[b];
    }
    e += catalog::decompressor_energy() * stats.decompressions.get();
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DnucaCache, DnucaConfig, SearchPolicy};
    use memsys::lower::LowerCache;
    use simbase::{AccessKind, BlockAddr, Cycle};

    #[test]
    fn multicast_costs_more_than_serial_search() {
        let run = |policy| {
            let mut c = DnucaCache::new(DnucaConfig::micro2003(policy));
            let mut t = Cycle::ZERO;
            for i in 0..2000u64 {
                let out = c.access(BlockAddr::from_index((i * 13) % 4000), AccessKind::Read, t);
                t = out.complete_at + 20;
            }
            dynamic_energy(c.stats(), c.geometry()).nj() / 2000.0
        };
        let perf = run(SearchPolicy::SsPerformance);
        let energy = run(SearchPolicy::SsEnergy);
        assert!(perf > energy, "multicast {perf} nJ/access vs serial {energy}");
    }
}
