//! Deterministic per-block compressibility model for the compressed NUCA
//! organization ([`crate::compressed`]).
//!
//! Real compressed caches (after Dgien et al., and the BDI / FPC line of
//! work surveyed in arXiv 2201.00774) compress a block's *contents*; this
//! simulator carries no data values, so compressibility is modeled as a
//! pure function of the block address: the address (mixed with a model
//! seed) seeds a [`SimRng`] whose single draw selects a BDI-style size
//! class. The model is therefore
//!
//! * **deterministic and idempotent** — the same address always compresses
//!   to the same size, across reconstruction and snapshot restore, so
//!   warm-up checkpoints stay valid;
//! * **trace-stable** — a block's class never changes mid-run, mirroring
//!   the observation that compressibility is a property of the data a
//!   block holds, which the address stream proxies here;
//! * **tunable** — the seed is an architectural knob (it changes which
//!   blocks fit the fast compressed ways), so it participates in the
//!   warm-up digest.
//!
//! The class distribution follows the BDI evaluation's rough shape: about
//! 60% of blocks compress to half a frame or better (classes 16/32/64 B
//! of a 128-B block), the rest are stored uncompressed.

use cachemodel::catalog::BLOCK_BYTES;
use simbase::rng::SimRng;
use simbase::BlockAddr;

/// BDI-style size classes a 128-byte block can compress into, in bytes.
/// `BLOCK_BYTES` means "incompressible, stored raw".
pub const SIZE_CLASSES: [u64; 4] = [16, 32, 64, BLOCK_BYTES];

/// The address-seeded compressibility model. Stateless: every query is a
/// pure function of `(seed, address)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressModel {
    seed: u64,
}

impl CompressModel {
    /// Creates a model with the given seed.
    pub fn new(seed: u64) -> Self {
        CompressModel { seed }
    }

    /// The model seed (an architectural knob — see the module docs).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The compressed size of `block` in bytes, one of [`SIZE_CLASSES`].
    ///
    /// Class probabilities: 15% → 16 B, 20% → 32 B, 25% → 64 B,
    /// 40% → 128 B (incompressible).
    pub fn compressed_bytes(&self, block: BlockAddr) -> u64 {
        // One seeded draw per query; SimRng::seeded runs splitmix64 over
        // the mixed address, so nearby addresses land in unrelated classes.
        let mut rng = SimRng::seeded(
            self.seed ^ block.index().wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        match rng.below(100) {
            0..=14 => 16,
            15..=34 => 32,
            35..=59 => 64,
            _ => BLOCK_BYTES,
        }
    }

    /// True if `block` fits a half-frame compressed way (≤ 64 B).
    pub fn is_compressible(&self, block: BlockAddr) -> bool {
        self.compressed_bytes(block) * 2 <= BLOCK_BYTES
    }

    /// Cycles of decompression latency a hit on `block` pays when it is
    /// stored compressed: `decomp_cycles` for any compressed class, zero
    /// for a raw block.
    pub fn decompress_cycles(&self, block: BlockAddr, decomp_cycles: u64) -> u64 {
        if self.compressed_bytes(block) < BLOCK_BYTES {
            decomp_cycles
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_always_a_known_class() {
        let m = CompressModel::new(0xC0DEC);
        for i in 0..10_000u64 {
            let s = m.compressed_bytes(BlockAddr::from_index(i * 37));
            assert!(SIZE_CLASSES.contains(&s), "unknown class {s}");
        }
    }

    #[test]
    fn queries_are_idempotent_per_address() {
        let m = CompressModel::new(7);
        for i in 0..2_000u64 {
            let b = BlockAddr::from_index(i);
            assert_eq!(m.compressed_bytes(b), m.compressed_bytes(b));
            assert_eq!(m.is_compressible(b), m.is_compressible(b));
        }
    }

    #[test]
    fn about_sixty_percent_compress_to_half() {
        let m = CompressModel::new(0xC0DEC);
        let n = 100_000u64;
        let hits = (0..n)
            .filter(|&i| m.is_compressible(BlockAddr::from_index(i)))
            .count() as f64;
        let frac = hits / n as f64;
        assert!((0.55..0.65).contains(&frac), "compressible frac {frac}");
    }

    #[test]
    fn decompress_latency_is_zero_iff_raw() {
        let m = CompressModel::new(3);
        for i in 0..2_000u64 {
            let b = BlockAddr::from_index(i);
            let c = m.decompress_cycles(b, 2);
            if m.compressed_bytes(b) == BLOCK_BYTES {
                assert_eq!(c, 0);
            } else {
                assert_eq!(c, 2);
            }
        }
    }

    #[test]
    fn seed_changes_the_classification() {
        let a = CompressModel::new(1);
        let b = CompressModel::new(2);
        let differing = (0..1_000u64)
            .filter(|&i| {
                a.compressed_bytes(BlockAddr::from_index(i))
                    != b.compressed_bytes(BlockAddr::from_index(i))
            })
            .count();
        assert!(differing > 100, "seeds must reshuffle classes ({differing})");
    }
}
