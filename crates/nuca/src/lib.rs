//! D-NUCA: the dynamic non-uniform cache architecture baseline.
//!
//! A reimplementation of the best-performing D-NUCA design of Kim, Burger,
//! and Keckler (ASPLOS 2002) exactly as the NuRAPID paper configures it
//! for comparison (Section 4):
//!
//! * 8 MB, 16-way, divided into **128 × 64-KB banks** with 8 bank
//!   positions ("d-groups") per bank set — two ways of every set per bank;
//! * **coupled tag and data placement**: each bank has its own tag array;
//!   a block's position in the tag array is its position in the data
//!   array;
//! * **bubble (generational) promotion**: a hit swaps the block with one
//!   in the adjacent faster bank; misses place the new block in the
//!   *slowest* bank and evict the block in the slowest way of the set;
//! * a **smart-search array** caching the 7 least-significant tag bits of
//!   every block ([`smart_search`]), used by both of the paper's search
//!   policies: *ss-performance* (multicast all banks, early-miss
//!   detection) and *ss-energy* (probe only partial-tag-matching banks,
//!   nearest first);
//! * **multibanked with an infinite-bandwidth switched network**: swaps
//!   and accesses proceed concurrently; only per-bank contention is
//!   modeled, exactly the advantage the paper grants D-NUCA.
//!
//! # Examples
//!
//! ```
//! use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
//! use memsys::lower::LowerCache;
//! use simbase::{AccessKind, BlockAddr, Cycle};
//!
//! let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsPerformance));
//! let miss = cache.access(BlockAddr::from_index(3), AccessKind::Read, Cycle::ZERO);
//! assert!(!miss.hit);
//! // The refill lands in the slowest bank position: the re-access hits
//! // but pays the far-bank latency.
//! let hit = cache.access(BlockAddr::from_index(3), AccessKind::Read, Cycle::new(10_000));
//! assert!(hit.hit);
//! ```

// Two sibling organizations share this crate's geometry and smart-search
// machinery: [`compressed`] packs compressible blocks into half-frame
// fast ways (compressed NUCA), and [`SearchPolicy::WayMemo`] adds a
// way-memoization search policy to the D-NUCA cache itself.
pub mod cache;
pub mod compress;
pub mod compressed;
pub mod energy;
pub mod naive;
pub mod smart_search;
pub mod stats;

pub use cache::{DnucaCache, DnucaConfig, SearchPolicy};
pub use compress::CompressModel;
pub use compressed::{CnucaConfig, CompressedNucaCache};
pub use stats::{CnucaStats, DnucaStats};
