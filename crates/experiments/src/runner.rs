//! Full-system run machinery: one application through one lower-level
//! cache organization, with warm-up.
//!
//! Warm-up runs as a functional fast-forward by default
//! ([`WarmupMode::FastForward`]): every architectural effect — cache
//! fills, recency updates, distance placement, demotion chains,
//! predictor training — is applied, while port scheduling, latency math,
//! energy, and telemetry are skipped. The stats boundary is an explicit
//! drain barrier (DESIGN.md §11) that both warm-up modes cross
//! identically, which makes the measured phase bit-identical between
//! them and lets warm architectural state be checkpointed to disk
//! ([`crate::checkpoint::CheckpointStore`]) keyed by [`warmup_digest`].

use crate::checkpoint::CheckpointStore;
use cpu::uop::TraceSource;
use cpu::{CoreParams, CoreResult, OooCore};
use energy::core::CoreEnergyModel;
use energy::EnergyTally;
use memsys::dramcache::{L4Config, L4DramCache, L4Stats};
use memsys::hierarchy::BaseHierarchy;
use memsys::l1::CoreMemSystem;
use memsys::org::{OrgReport, Organization};
use nuca::{CnucaConfig, CompressedNucaCache, DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::coupled::CoupledCache;
use nurapid::{DistanceVictimPolicy, NuRapidCache, NuRapidConfig, PromotionPolicy};
use simbase::digest::{Digest, Hasher128};
use simbase::snapshot::{Decoder, Encoder};
use simbase::EnergyNj;
use simtel::{Telemetry, TelemetrySink};
use std::time::Instant;
use workloads::{BenchProfile, TraceGenerator};

/// Seed of every run's trace generator (fixed: experiments vary the
/// cache organization, not the workload stream).
pub const TRACE_SEED: u64 = 0x5eed;

/// Which lower-level cache organization to simulate.
#[derive(Debug, Clone)]
pub enum L2Kind {
    /// Conventional 1-MB L2 + 8-MB L3 (the base case).
    Base,
    /// NuRAPID with the given configuration.
    NuRapid(NuRapidConfig),
    /// The Figure 4 set-associative-placement ablation with this many
    /// d-groups.
    Coupled(usize),
    /// D-NUCA with the given search policy.
    Dnuca(SearchPolicy),
    /// Compressed NUCA with the given configuration.
    Cnuca(CnucaConfig),
    /// Any of the above with an L4 DRAM-cache tier attached to its main
    /// memory (`--l4`; DESIGN.md §15).
    L4(Box<L2Kind>, L4Config),
}

/// Instruction budget for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Warm-up instructions (caches filled, statistics then reset) —
    /// the stand-in for the paper's 5 B-instruction fast-forward.
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
}

impl Scale {
    /// The default reproduction scale (used for EXPERIMENTS.md): the
    /// paper's 5 B-instruction fast-forward at a 1000× scale-down, then
    /// 2 M measured instructions. Warm-up dominates just as it does in
    /// the paper, which is what the functional fast-forward and the
    /// checkpoint store are for.
    pub fn full() -> Self {
        Scale {
            warmup: 5_000_000,
            measure: 2_000_000,
        }
    }

    /// A fast scale for tests and the simkit benches.
    pub fn quick() -> Self {
        Scale {
            warmup: 150_000,
            measure: 250_000,
        }
    }

    /// The billion-instruction scale (`--huge`). Only practical through
    /// the sampled runner ([`crate::sampling`]): a full detailed
    /// simulation of a billion instructions is wall-clock-prohibitive,
    /// while periodic sampling executes the bulk of it as a functional
    /// fast-forward and times only the measurement windows.
    pub fn huge() -> Self {
        Scale {
            warmup: 5_000_000,
            measure: 1_000_000_000,
        }
    }
}

/// How the warm-up phase executes. Both modes build bit-identical
/// architectural state (proven by the differential tests below and in
/// each cache crate), so the measured phase cannot tell them apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmupMode {
    /// Functional fast-forward (the default): apply every architectural
    /// effect while skipping port scheduling, latency math, energy
    /// accounting, and telemetry — the stand-in for the paper's
    /// 5 B-instruction functional fast-forward.
    #[default]
    FastForward,
    /// Full timing simulation during warm-up. Kept as the differential
    /// oracle for [`WarmupMode::FastForward`].
    Timed,
}

/// Optional knobs of a run: warm-up mode, the checkpoint store, and the
/// wall-clock telemetry channel for phase spans.
#[derive(Clone, Copy, Default)]
pub struct RunOptions<'a> {
    /// How to execute warm-up.
    pub mode: WarmupMode,
    /// Reuse/publish warm-up checkpoints through this store.
    pub checkpoints: Option<&'a CheckpointStore>,
    /// Record per-phase wall spans and checkpoint hit/miss marks (the
    /// non-deterministic `wall.json` channel only — never metrics).
    pub wall: Option<&'a Telemetry>,
}

impl L2Kind {
    /// The single construction seam of the plugin architecture: builds
    /// the concrete organization behind a `Box<dyn Organization>`. The
    /// rest of the runner — warm-up, checkpointing, the drain barrier,
    /// the measured loop, and the report — never names a concrete cache
    /// type, so a new organization only needs a variant here plus the
    /// two digest arms (DESIGN.md §12).
    pub fn build(&self) -> Box<dyn Organization> {
        match self {
            L2Kind::Base => {
                let mut h = BaseHierarchy::micro2003();
                let e = energy::l2::BaseLevelEnergies::micro2003();
                h.set_level_energies(e.l2_nj, e.l3_nj);
                Box::new(h)
            }
            L2Kind::NuRapid(cfg) => Box::new(NuRapidCache::new(cfg.clone())),
            L2Kind::Coupled(n) => Box::new(CoupledCache::micro2003(*n)),
            L2Kind::Dnuca(policy) => Box::new(DnucaCache::new(DnucaConfig::micro2003(*policy))),
            L2Kind::Cnuca(cfg) => Box::new(CompressedNucaCache::new(*cfg)),
            L2Kind::L4(inner, cfg) => {
                let mut org = inner.build();
                org.main_memory_mut()
                    .expect("the L4 tier needs a DRAM-backed organization")
                    .attach_l4(L4DramCache::new(cfg.clone()));
                org
            }
        }
    }

    /// The measured-phase resize schedule of the L4 tier (empty for
    /// every other kind). Applied by the measured loop at the scheduled
    /// op indices; part of [`run_digest`] but never [`warmup_digest`]
    /// (resizes happen strictly after the warm-up barrier).
    pub fn resize_schedule(&self) -> &[(u64, u32)] {
        match self {
            L2Kind::L4(_, cfg) => &cfg.resizes,
            _ => &[],
        }
    }

    /// Feeds every field of the configuration into `h`, discriminant
    /// first, so two organizations digest equal iff they simulate
    /// identically. This — not a label string — keys the run store and
    /// the on-disk artifacts.
    pub fn digest_into(&self, h: &mut Hasher128) {
        match self {
            L2Kind::Base => h.write_u8(0),
            L2Kind::NuRapid(c) => {
                h.write_u8(1);
                h.write_u64(c.capacity.bytes());
                h.write_u32(c.assoc);
                h.write_u64(c.n_dgroups as u64);
                h.write_u8(match c.promotion {
                    PromotionPolicy::DemotionOnly => 0,
                    PromotionPolicy::NextFastest => 1,
                    PromotionPolicy::Fastest => 2,
                });
                h.write_u8(match c.distance_victim {
                    DistanceVictimPolicy::Random => 0,
                    DistanceVictimPolicy::Lru => 1,
                    DistanceVictimPolicy::ClockApprox => 2,
                });
                h.write_u64(c.seed);
                h.write_bool(c.ideal);
                h.write_opt_u32(c.frames_per_region);
            }
            L2Kind::Coupled(n) => {
                h.write_u8(2);
                h.write_u64(*n as u64);
            }
            L2Kind::Dnuca(policy) => {
                h.write_u8(3);
                h.write_u8(match policy {
                    SearchPolicy::SsPerformance => 0,
                    SearchPolicy::SsEnergy => 1,
                    SearchPolicy::WayMemo => 2,
                });
            }
            L2Kind::Cnuca(c) => {
                h.write_u8(4);
                h.write_u64(c.capacity.bytes());
                h.write_u32(c.assoc);
                h.write_u64(c.n_banks as u64);
                h.write_u64(c.n_positions as u64);
                h.write_u64(c.comp_seed);
                h.write_u64(c.decomp_cycles);
            }
            L2Kind::L4(inner, c) => {
                h.write_u8(5);
                inner.digest_into(h);
                h.write_u32(c.n_banks);
                h.write_u64(c.bank_blocks);
                h.write_u32(c.assoc);
                h.write_u32(c.vnodes_per_bank);
                h.write_u64(c.hash_seed);
                h.write_u64(c.block_bytes);
                h.write_u64(c.tag_sram_latency);
                h.write_u64(c.tag_probe_latency);
                h.write_u64(c.base_latency);
                h.write_u64(c.cycles_per_8b);
                h.write_u32(c.tag_cache_entries);
                h.write_u64(c.resizes.len() as u64);
                for &(at, target) in &c.resizes {
                    h.write_u64(at);
                    h.write_u32(target);
                }
            }
        }
    }
}

/// Feeds every field of an application profile into `h`. Shared by the
/// single-core digests below and the CMP digests in [`crate::cmp`], so
/// the two families can never disagree about what identifies a workload.
pub(crate) fn digest_profile(h: &mut Hasher128, profile: &BenchProfile) {
    h.write_str(profile.name);
    h.write_u8(profile.class as u8);
    h.write_bool(profile.fp);
    h.write_f64(profile.load_frac);
    h.write_f64(profile.store_frac);
    h.write_u32(profile.branch_every);
    h.write_f64(profile.branch_bias);
    h.write_f64(profile.l1_reuse);
    h.write_u64(profile.hot_footprint.bytes());
    h.write_f64(profile.hot_frac);
    h.write_u64(profile.stream_footprint.bytes());
    h.write_u32(profile.spatial_run);
    h.write_f64(profile.dep_load_frac);
    h.write_u64(profile.code_footprint.bytes());
}

/// Digest of one schedulable job: the full application profile, the full
/// cache configuration, the instruction budget, and the trace seed.
/// Everything that determines an [`AppRun`] bit-for-bit is included, so
/// equal digests ⇒ interchangeable results (in-process or on disk).
pub fn run_digest(profile: &BenchProfile, kind: &L2Kind, scale: Scale) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-run-v1");
    digest_profile(&mut h, profile);
    kind.digest_into(&mut h);
    h.write_u64(scale.warmup);
    h.write_u64(scale.measure);
    h.write_u64(TRACE_SEED);
    h.digest()
}

/// Digest of the warm-up-relevant slice of a job: everything that shapes
/// the architectural state at the end of warm-up, and nothing else. This
/// keys the on-disk checkpoint store, so two configurations that differ
/// only in timing knobs — NuRAPID's `ideal` latency mode, D-NUCA's search
/// policy — or in the measured-instruction budget share one checkpoint.
pub fn warmup_digest(profile: &BenchProfile, kind: &L2Kind, scale: Scale) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-warmup-v1");
    digest_profile(&mut h, profile);
    digest_kind_architectural(&mut h, kind);
    h.write_u64(scale.warmup);
    h.write_u64(TRACE_SEED);
    h.write_u32(crate::checkpoint::CHECKPOINT_VERSION);
    h.digest()
}

/// Feeds the **architectural** slice of a configuration into `h`:
/// everything that shapes warm-up state, with timing-only knobs
/// deliberately excluded so their variants share one checkpoint. Shared
/// by [`warmup_digest`] and the CMP warm-up digest in [`crate::cmp`].
pub(crate) fn digest_kind_architectural(h: &mut Hasher128, kind: &L2Kind) {
    match kind {
        L2Kind::Base => h.write_u8(0),
        L2Kind::NuRapid(c) => {
            h.write_u8(1);
            h.write_u64(c.capacity.bytes());
            h.write_u32(c.assoc);
            h.write_u64(c.n_dgroups as u64);
            h.write_u8(match c.promotion {
                PromotionPolicy::DemotionOnly => 0,
                PromotionPolicy::NextFastest => 1,
                PromotionPolicy::Fastest => 2,
            });
            h.write_u8(match c.distance_victim {
                DistanceVictimPolicy::Random => 0,
                DistanceVictimPolicy::Lru => 1,
                DistanceVictimPolicy::ClockApprox => 2,
            });
            h.write_u64(c.seed);
            // `ideal` deliberately excluded: it changes only hit latency
            // and port occupancy, never an architectural transition.
            h.write_opt_u32(c.frames_per_region);
        }
        L2Kind::Coupled(n) => {
            h.write_u8(2);
            h.write_u64(*n as u64);
        }
        // The search policy is deliberately excluded: all three policies
        // take identical architectural transitions (hits, fills, bubble
        // swaps, memo-table updates) — only when timing starts differs.
        // The way memo is maintained under every policy precisely so this
        // sharing stays valid.
        L2Kind::Dnuca(_) => h.write_u8(3),
        L2Kind::Cnuca(c) => {
            h.write_u8(4);
            h.write_u64(c.capacity.bytes());
            h.write_u32(c.assoc);
            h.write_u64(c.n_banks as u64);
            h.write_u64(c.n_positions as u64);
            // The compressibility seed is architectural — it decides which
            // blocks may occupy the fast compressed ways, so warm-up state
            // depends on it. `decomp_cycles` is deliberately excluded: it
            // only delays hit completion, never an architectural
            // transition.
            h.write_u64(c.comp_seed);
        }
        L2Kind::L4(inner, c) => {
            h.write_u8(5);
            digest_kind_architectural(h, inner);
            // Geometry and hashing shape the warm resident set; the
            // latency knobs, the SRAM tag-cache size (timing-only), and
            // the resize schedule (measured-phase-only by construction)
            // are deliberately excluded so their variants share one
            // checkpoint.
            h.write_u32(c.n_banks);
            h.write_u64(c.bank_blocks);
            h.write_u32(c.assoc);
            h.write_u32(c.vnodes_per_bank);
            h.write_u64(c.hash_seed);
            h.write_u64(c.block_bytes);
        }
    }
}

/// The measured results of one application on one organization.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRun {
    /// Application name.
    pub name: &'static str,
    /// Measured-phase core results.
    pub core: CoreResult,
    /// L2 accesses during the measured phase.
    pub l2_accesses: u64,
    /// L2 misses during the measured phase.
    pub l2_misses: u64,
    /// Fraction of L2 accesses hitting each d-group / bank-position-MB
    /// (empty for the base hierarchy).
    pub group_fracs: Vec<f64>,
    /// Fraction of L2 accesses that missed.
    pub miss_frac: f64,
    /// Total data-array (d-group or bank) accesses including swap and
    /// search traffic (0 for the base hierarchy).
    pub dgroup_accesses: u64,
    /// Block movements (promotions + demotions or bubble swaps).
    pub swaps: u64,
    /// Dynamic L2 energy over the measured phase.
    pub l2_energy: EnergyNj,
    /// Full-system energy tally over the measured phase.
    pub energy: EnergyTally,
}

impl AppRun {
    /// Measured IPC.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// L2 accesses per kilo-instruction (Table 3's metric).
    pub fn apki(&self) -> f64 {
        1000.0 * self.l2_accesses as f64 / self.core.instructions.max(1) as f64
    }

    /// Energy-delay product (relative unit).
    pub fn edp(&self) -> f64 {
        self.energy.energy_delay(self.core.cycles)
    }
}

/// Runs `profile` on the organization `kind` at `scale` with telemetry
/// disabled (the common path; identical to
/// [`run_app_telemetry`] with a disabled sink).
pub fn run_app(profile: BenchProfile, kind: &L2Kind, scale: Scale) -> AppRun {
    run_app_telemetry(profile, kind, scale, &TelemetrySink::disabled(), 0)
}

/// Runs `profile` on the organization `kind` at `scale`, recording
/// metrics, cycle-stamped spans, and periodic progress snapshots (every
/// `snap_every` cycles) into `sink`. Warm-up telemetry is discarded when
/// the statistics reset, so the sink reflects the measured phase only —
/// the same window the printed tables report.
pub fn run_app_telemetry(
    profile: BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    sink: &TelemetrySink,
    snap_every: u64,
) -> AppRun {
    run_app_opts(profile, kind, scale, sink, snap_every, RunOptions::default())
}

/// The full-fat entry point: [`run_app_telemetry`] plus the warm-up mode,
/// checkpoint store, and wall-clock channel of [`RunOptions`].
pub fn run_app_opts(
    profile: BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    sink: &TelemetrySink,
    snap_every: u64,
    opts: RunOptions<'_>,
) -> AppRun {
    let chk = warmup_digest(&profile, kind, scale);
    let (core, mem) = drive(
        profile,
        kind.build(),
        scale,
        sink,
        snap_every,
        chk,
        opts,
        kind.resize_schedule(),
    );
    let report = mem.lower().report();
    let l4 = mem.lower().main_memory().and_then(|m| m.l4_stats());
    finish_run(profile.name, core, mem.l1_accesses(), report, l4)
}

/// Runs the warm-up instructions on `core` in the requested mode.
fn warm_up(
    core: &mut OooCore<Box<dyn Organization>>,
    gen: &mut TraceGenerator,
    n: u64,
    mode: WarmupMode,
) {
    match mode {
        WarmupMode::FastForward => core.warm_run(gen, n),
        WarmupMode::Timed => core.run(gen, n),
    }
}

/// Runs prefill, warm-up (optionally restored from a checkpoint), and
/// the drain barrier, returning a core parked at measured-phase cycle
/// zero plus the trace generator positioned at the first measured op.
/// Shared by [`drive`] and [`run_app_transient`], so the windowed
/// transient runs cross the identical barrier as everything else.
fn prepare(
    profile: BenchProfile,
    mut lower: Box<dyn Organization>,
    scale: Scale,
    sink: &TelemetrySink,
    snap_every: u64,
    chk_digest: Digest,
    opts: RunOptions<'_>,
) -> (OooCore<Box<dyn Organization>>, TraceGenerator) {
    let mut gen = TraceGenerator::new(profile, TRACE_SEED);
    lower.prefill();
    let mem = CoreMemSystem::micro2003(lower);
    let mut core = OooCore::new(CoreParams::micro2003(), mem);

    // Phase 1 — warm-up. Telemetry stays detached: warm-up produces
    // architectural state only. With a checkpoint store, the state comes
    // out of a decoded blob on both the build and the reuse path, so the
    // cold and warm runs are structurally identical by construction.
    let t_warm = Instant::now();
    match opts.checkpoints {
        Some(store) => {
            let (blob, hit) = store.get_or_build(chk_digest, || {
                warm_up(&mut core, &mut gen, scale.warmup, opts.mode);
                let mut e = Encoder::new();
                gen.save_state(&mut e);
                core.predictor().save_state(&mut e);
                core.mem().save_l1_state(&mut e);
                core.mem().lower().save_state(&mut e);
                e.into_bytes()
            });
            let mut d = Decoder::new(&blob);
            gen.load_state(&mut d).expect("checkpoint: generator state");
            core.predictor_mut()
                .load_state(&mut d)
                .expect("checkpoint: predictor state");
            core.mem_mut()
                .load_l1_state(&mut d)
                .expect("checkpoint: L1 state");
            core.mem_mut()
                .lower_mut()
                .load_state(&mut d)
                .expect("checkpoint: lower-cache state");
            d.finish().expect("checkpoint: trailing bytes");
            if let Some(w) = opts.wall {
                let outcome = if hit { "hit" } else { "miss" };
                w.wall_mark("simchk", &format!("{outcome}/{}", profile.name));
            }
        }
        None => warm_up(&mut core, &mut gen, scale.warmup, opts.mode),
    }
    if let Some(w) = opts.wall {
        let cat = match opts.mode {
            WarmupMode::FastForward => "warmup-ff",
            WarmupMode::Timed => "warmup-timed",
        };
        let name = format!("{}/{}-ops", profile.name, scale.warmup);
        w.wall_span(cat, &name, t_warm.elapsed().as_nanos() as u64);
    }

    // Drain barrier at the stats boundary (DESIGN.md §11): clear every
    // piece of timing state, zero the statistics, and rebuild the core
    // at cycle zero over the preserved architectural state. Both warm-up
    // modes cross this identical barrier, which is what makes the
    // measured phase bit-identical between them.
    let (mut mem, mut pred) = core.into_parts();
    mem.drain_timing();
    mem.lower_mut().drain_timing();
    mem.reset_stats();
    mem.lower_mut().reset_stats();
    pred.reset_counters();
    // Telemetry attaches only after the barrier, so the exported metrics
    // and spans cover exactly the measured window.
    sink.reset();
    mem.lower_mut().set_telemetry(sink, snap_every);
    mem.set_telemetry(sink.clone());
    let mut core = OooCore::new(CoreParams::micro2003(), mem);
    core.set_predictor(pred);
    core.set_telemetry(sink.clone(), snap_every);
    (core, gen)
}

/// Applies every resize scheduled at op index `i`, advancing the cursor.
#[inline]
fn apply_resizes(
    core: &mut OooCore<Box<dyn Organization>>,
    resizes: &[(u64, u32)],
    next: &mut usize,
    i: u64,
) {
    while *next < resizes.len() && resizes[*next].0 == i {
        let target = resizes[*next].1;
        let now = simbase::Cycle::new(core.cycles());
        core.mem_mut()
            .lower_mut()
            .main_memory_mut()
            .expect("a resize schedule needs a DRAM-backed organization")
            .resize_l4(target, now);
        *next += 1;
    }
}

/// Runs the trace through the core: [`prepare`], then the measured
/// phase, applying any L4 resize schedule at its op indices. Dispatches
/// through the [`Organization`] trait only — this function is identical
/// for every plugin.
#[allow(clippy::too_many_arguments)]
fn drive(
    profile: BenchProfile,
    lower: Box<dyn Organization>,
    scale: Scale,
    sink: &TelemetrySink,
    snap_every: u64,
    chk_digest: Digest,
    opts: RunOptions<'_>,
    resizes: &[(u64, u32)],
) -> (CoreResult, CoreMemSystem<Box<dyn Organization>>) {
    let wall = opts.wall;
    let (mut core, mut gen) = prepare(profile, lower, scale, sink, snap_every, chk_digest, opts);

    // Phase 2 — the measured run.
    let t_measure = Instant::now();
    let mut next_resize = 0usize;
    for i in 0..scale.measure {
        apply_resizes(&mut core, resizes, &mut next_resize, i);
        let op = gen.next_op();
        core.execute(op);
    }
    if let Some(w) = wall {
        w.wall_span("measure", profile.name, t_measure.elapsed().as_nanos() as u64);
    }
    let result = core.finish();
    (result, core.into_mem())
}

/// One window of a resize-transient run: the measured phase is split
/// into equal instruction windows and the per-window rates expose the
/// IPC/energy dip at each resize event and the recovery after it.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientWindow {
    /// Instructions committed in this window.
    pub instructions: u64,
    /// Cycles elapsed in this window.
    pub cycles: u64,
    /// L4 event deltas over this window.
    pub l4: L4Stats,
    /// Live L4 bank count at the end of the window.
    pub n_banks: u32,
    /// Memory-tier (L4 + DRAM) energy of this window.
    pub memory_energy: EnergyNj,
}

impl TransientWindow {
    /// Window IPC.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }
}

/// Runs `profile` on `kind` like [`run_app_opts`], but slices the
/// measured phase into `n_windows` equal instruction windows and
/// records per-window IPC, L4 traffic, bank count, and memory energy —
/// the `dram` experiment's resize-transient data. The access stream,
/// resize application, and final [`AppRun`] are bit-identical to an
/// unwindowed run of the same configuration (windowing only samples
/// counters between instructions).
pub fn run_app_transient(
    profile: BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    n_windows: usize,
    opts: RunOptions<'_>,
) -> (AppRun, Vec<TransientWindow>) {
    assert!(n_windows > 0, "a transient run needs at least one window");
    let chk = warmup_digest(&profile, kind, scale);
    let sink = TelemetrySink::disabled();
    let (mut core, mut gen) = prepare(profile, kind.build(), scale, &sink, 0, chk, opts);
    let resizes = kind.resize_schedule();

    let mut windows = Vec::with_capacity(n_windows);
    let mut next_resize = 0usize;
    let mut done = 0u64;
    let mut window_start = 0u64;
    let mut prev_cycles = 0u64;
    let mut prev_l4 = L4Stats::default();
    let mut prev_mem = 0u64;
    let energy_model = CoreEnergyModel::micro2003();
    for w in 0..n_windows {
        let end = scale.measure * (w as u64 + 1) / n_windows as u64;
        while done < end {
            apply_resizes(&mut core, resizes, &mut next_resize, done);
            let op = gen.next_op();
            core.execute(op);
            done += 1;
        }
        let main = core.mem().lower().main_memory();
        let l4_now = main.and_then(|m| m.l4_stats());
        let mem_now = main.map_or(0, |m| m.accesses());
        let wl4 = l4_now.unwrap_or_default().minus(&prev_l4);
        let memory_energy = match l4_now {
            Some(_) => energy::l4::memory_energy(wl4.dram_blocks(), wl4.tag_probes, wl4.accesses),
            None => energy_model.memory_energy(mem_now - prev_mem),
        };
        windows.push(TransientWindow {
            instructions: end - window_start,
            cycles: core.cycles() - prev_cycles,
            l4: wl4,
            n_banks: main.and_then(|m| m.l4()).map_or(0, |l| l.n_banks()),
            memory_energy,
        });
        window_start = end;
        prev_cycles = core.cycles();
        prev_l4 = l4_now.unwrap_or_default();
        prev_mem = mem_now;
    }
    let result = core.finish();
    let mem = core.into_mem();
    let report = mem.lower().report();
    let l4 = mem.lower().main_memory().and_then(|m| m.l4_stats());
    let run = finish_run(profile.name, result, mem.l1_accesses(), report, l4);
    (run, windows)
}

/// Prices the full-system energy tally and assembles the [`AppRun`] from
/// the organization's common [`OrgReport`]. With an L4 attached, the
/// memory tier is priced by [`energy::l4::memory_energy`] — only the
/// traffic that really crossed the DRAM channel costs the off-chip rate,
/// plus the L4's own access and tag-probe energy; without one, every
/// lower-cache miss is a full off-chip transfer, exactly as before.
fn finish_run(
    name: &'static str,
    core: CoreResult,
    l1_accesses: u64,
    r: OrgReport,
    l4: Option<L4Stats>,
) -> AppRun {
    let m = CoreEnergyModel::micro2003();
    let memory = match l4 {
        Some(s) => energy::l4::memory_energy(s.dram_blocks(), s.tag_probes, s.accesses),
        None => m.memory_energy(r.memory_accesses),
    };
    let energy = EnergyTally {
        core: m.core_energy(&core),
        l1: m.l1_energy(l1_accesses),
        l2: r.l2_energy,
        memory,
    };
    AppRun {
        name,
        core,
        l2_accesses: r.l2_accesses,
        l2_misses: r.l2_misses,
        group_fracs: r.group_fracs,
        miss_frac: r.miss_frac,
        dgroup_accesses: r.dgroup_accesses,
        swaps: r.swaps,
        l2_energy: r.l2_energy,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::profiles::by_name;

    fn tiny() -> Scale {
        Scale {
            warmup: 30_000,
            measure: 60_000,
        }
    }

    #[test]
    fn base_run_produces_sane_numbers() {
        let r = run_app(by_name("applu").unwrap(), &L2Kind::Base, tiny());
        assert_eq!(r.core.instructions, 60_000);
        assert!(r.ipc() > 0.05 && r.ipc() < 8.0, "ipc={}", r.ipc());
        assert!(r.apki() > 1.0, "high-load app must reach the L2: {}", r.apki());
        assert!(r.energy.total().nj() > 0.0);
        assert!(r.group_fracs.is_empty());
    }

    #[test]
    fn nurapid_run_reports_group_fractions() {
        let r = run_app(
            by_name("galgel").unwrap(),
            &L2Kind::NuRapid(NuRapidConfig::micro2003(4)),
            tiny(),
        );
        assert_eq!(r.group_fracs.len(), 4);
        let total: f64 = r.group_fracs.iter().sum::<f64>() + r.miss_frac;
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to 1, got {total}");
        assert!(r.group_fracs[0] > 0.3, "galgel's 1-MB hot set is fast");
    }

    #[test]
    fn dnuca_run_reports_position_fractions() {
        let r = run_app(
            by_name("galgel").unwrap(),
            &L2Kind::Dnuca(SearchPolicy::SsPerformance),
            tiny(),
        );
        assert_eq!(r.group_fracs.len(), 8);
        assert!(r.dgroup_accesses > r.l2_accesses, "multicast searches many banks");
    }

    #[test]
    fn low_load_app_rarely_reaches_l2() {
        let r = run_app(by_name("wupwise").unwrap(), &L2Kind::Base, tiny());
        assert!(r.apki() < 15.0, "low-load apki={}", r.apki());
    }

    #[test]
    fn deterministic_across_runs() {
        let k = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let a = run_app(by_name("parser").unwrap(), &k, tiny());
        let b = run_app(by_name("parser").unwrap(), &k, tiny());
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.l2_accesses, b.l2_accesses);
    }

    /// The tentpole differential: for every organization, a functional
    /// fast-forward warm-up and a full-timing warm-up produce the same
    /// [`AppRun`] bit for bit (both cross the identical drain barrier,
    /// so only the architectural state could differ — and it doesn't).
    #[test]
    fn fast_forward_and_timed_warmup_agree_bit_for_bit() {
        let app = by_name("galgel").unwrap();
        let kinds = [
            L2Kind::Base,
            L2Kind::NuRapid(NuRapidConfig::micro2003(4)),
            L2Kind::Coupled(4),
            L2Kind::Dnuca(SearchPolicy::SsPerformance),
        ];
        let sink = TelemetrySink::disabled();
        for kind in &kinds {
            let ff = run_app_opts(
                app,
                kind,
                tiny(),
                &sink,
                0,
                RunOptions {
                    mode: WarmupMode::FastForward,
                    ..Default::default()
                },
            );
            let timed = run_app_opts(
                app,
                kind,
                tiny(),
                &sink,
                0,
                RunOptions {
                    mode: WarmupMode::Timed,
                    ..Default::default()
                },
            );
            assert_eq!(ff, timed, "warm-up modes diverged for {kind:?}");
        }
    }

    fn temp_store(name: &str) -> (std::path::PathBuf, CheckpointStore) {
        let dir = std::env::temp_dir().join(format!(
            "simchk-runner-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open checkpoint store");
        (dir, store)
    }

    #[test]
    fn checkpointed_runs_are_bit_identical_cold_and_warm() {
        let app = by_name("parser").unwrap();
        let kind = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let sink = TelemetrySink::disabled();
        let direct = run_app_opts(app, &kind, tiny(), &sink, 0, RunOptions::default());

        let (dir, store) = temp_store("cold-warm");
        let opts = RunOptions {
            checkpoints: Some(&store),
            ..Default::default()
        };
        let cold = run_app_opts(app, &kind, tiny(), &sink, 0, opts);
        let warm = run_app_opts(app, &kind, tiny(), &sink, 0, opts);
        assert_eq!((store.misses(), store.hits()), (1, 1));
        assert_eq!(direct, cold, "cold store changed the result");
        assert_eq!(cold, warm, "warm store changed the result");

        // A fresh store over the same directory restores from disk.
        let reopened = CheckpointStore::open(&dir).expect("reopen");
        let from_disk = run_app_opts(
            app,
            &kind,
            tiny(),
            &sink,
            0,
            RunOptions {
                checkpoints: Some(&reopened),
                ..Default::default()
            },
        );
        assert_eq!((reopened.misses(), reopened.hits()), (0, 1));
        assert_eq!(direct, from_disk, "disk restore changed the result");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `ideal` is a timing-only knob, so the ideal configuration reuses
    /// the checkpoint its non-ideal twin built — and still reproduces its
    /// own numbers exactly.
    #[test]
    fn ideal_config_reuses_twin_checkpoint_without_changing_results() {
        let app = by_name("galgel").unwrap();
        let nf = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let id = L2Kind::NuRapid(NuRapidConfig::micro2003(4).with_ideal());
        let sink = TelemetrySink::disabled();
        let id_direct = run_app_opts(app, &id, tiny(), &sink, 0, RunOptions::default());

        let (dir, store) = temp_store("ideal-twin");
        let opts = RunOptions {
            checkpoints: Some(&store),
            ..Default::default()
        };
        let _nf = run_app_opts(app, &nf, tiny(), &sink, 0, opts);
        let id_chk = run_app_opts(app, &id, tiny(), &sink, 0, opts);
        assert_eq!(
            (store.misses(), store.hits()),
            (1, 1),
            "ideal must share its twin's checkpoint"
        );
        assert_eq!(id_direct, id_chk);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warmup_digest_shares_across_timing_only_knobs() {
        let app = by_name("galgel").unwrap();
        let nf = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let id = L2Kind::NuRapid(NuRapidConfig::micro2003(4).with_ideal());
        assert_eq!(warmup_digest(&app, &nf, tiny()), warmup_digest(&app, &id, tiny()));

        let perf = L2Kind::Dnuca(SearchPolicy::SsPerformance);
        let energy = L2Kind::Dnuca(SearchPolicy::SsEnergy);
        let memo = L2Kind::Dnuca(SearchPolicy::WayMemo);
        assert_eq!(
            warmup_digest(&app, &perf, tiny()),
            warmup_digest(&app, &energy, tiny())
        );
        // Way memoization only redirects the probe path; the memo table
        // is rebuilt from scratch after restore, so all three policies
        // share one warm checkpoint.
        assert_eq!(
            warmup_digest(&app, &perf, tiny()),
            warmup_digest(&app, &memo, tiny())
        );

        // The decompressor pipeline depth is pure timing: compressed
        // NUCA shares its warm state across `decomp_cycles` settings.
        let mut slow = CnucaConfig::micro2003();
        slow.decomp_cycles += 3;
        assert_eq!(
            warmup_digest(&app, &L2Kind::Cnuca(CnucaConfig::micro2003()), tiny()),
            warmup_digest(&app, &L2Kind::Cnuca(slow), tiny())
        );

        // The measured budget is warm-up-irrelevant too.
        let longer = Scale {
            warmup: tiny().warmup,
            measure: tiny().measure + 1,
        };
        assert_eq!(warmup_digest(&app, &nf, tiny()), warmup_digest(&app, &nf, longer));
    }

    #[test]
    fn warmup_digest_separates_architectural_knobs() {
        let app = by_name("galgel").unwrap();
        let nf = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let base = warmup_digest(&app, &nf, tiny());
        let shorter = Scale {
            warmup: tiny().warmup - 1,
            measure: tiny().measure,
        };
        let variants = [
            warmup_digest(&by_name("parser").unwrap(), &nf, tiny()),
            warmup_digest(&app, &L2Kind::Base, tiny()),
            warmup_digest(&app, &L2Kind::Coupled(4), tiny()),
            warmup_digest(&app, &L2Kind::Dnuca(SearchPolicy::SsPerformance), tiny()),
            warmup_digest(&app, &L2Kind::NuRapid(NuRapidConfig::micro2003(8)), tiny()),
            warmup_digest(
                &app,
                &L2Kind::NuRapid(
                    NuRapidConfig::micro2003(4).with_promotion(PromotionPolicy::Fastest),
                ),
                tiny(),
            ),
            warmup_digest(
                &app,
                &L2Kind::NuRapid(
                    NuRapidConfig::micro2003(4)
                        .with_distance_victim(DistanceVictimPolicy::Lru),
                ),
                tiny(),
            ),
            warmup_digest(&app, &nf, shorter),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "architectural variant {i} aliased the digest");
        }
    }

    /// Compressed NUCA's warm state depends on the compressibility map
    /// (placement follows it), so its digest must be disjoint from every
    /// baseline organization *and* from other compression seeds — a
    /// compressed-NUCA run may never be served a baseline checkpoint.
    #[test]
    fn warmup_digest_isolates_compressed_nuca() {
        let app = by_name("galgel").unwrap();
        let cnuca = L2Kind::Cnuca(CnucaConfig::micro2003());
        let base = warmup_digest(&app, &cnuca, tiny());
        let mut reseeded = CnucaConfig::micro2003();
        reseeded.comp_seed ^= 1;
        let variants = [
            warmup_digest(&app, &L2Kind::Base, tiny()),
            warmup_digest(&app, &L2Kind::Dnuca(SearchPolicy::SsPerformance), tiny()),
            warmup_digest(&app, &L2Kind::Dnuca(SearchPolicy::WayMemo), tiny()),
            warmup_digest(&app, &L2Kind::NuRapid(NuRapidConfig::micro2003(4)), tiny()),
            warmup_digest(&app, &L2Kind::Cnuca(reseeded), tiny()),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} aliased the compressed-NUCA digest");
        }
    }

    /// Store-level proof of the same property: running D-NUCA and then
    /// compressed NUCA against one [`CheckpointStore`] must build two
    /// separate checkpoints (2 misses, 0 cross-hits), while the way-memo
    /// policy warm-hits the checkpoint its sibling policy built.
    #[test]
    fn compressed_nuca_never_serves_a_baseline_checkpoint() {
        let app = by_name("parser").unwrap();
        let sink = TelemetrySink::disabled();
        let (dir, store) = temp_store("cnuca-isolation");
        let opts = RunOptions {
            checkpoints: Some(&store),
            ..Default::default()
        };
        let dn = run_app_opts(
            app,
            &L2Kind::Dnuca(SearchPolicy::SsPerformance),
            tiny(),
            &sink,
            0,
            opts,
        );
        let cn = run_app_opts(
            app,
            &L2Kind::Cnuca(CnucaConfig::micro2003()),
            tiny(),
            &sink,
            0,
            opts,
        );
        assert_eq!(
            (store.misses(), store.hits()),
            (2, 0),
            "compressed NUCA must not share a baseline warm checkpoint"
        );
        assert_ne!(dn, cn, "organizations with distinct placement agreed exactly");

        // The memo policy reuses the D-NUCA checkpoint and still
        // reproduces its uncheckpointed numbers bit for bit.
        let memo_direct = run_app_opts(
            app,
            &L2Kind::Dnuca(SearchPolicy::WayMemo),
            tiny(),
            &sink,
            0,
            RunOptions::default(),
        );
        let memo_warm = run_app_opts(
            app,
            &L2Kind::Dnuca(SearchPolicy::WayMemo),
            tiny(),
            &sink,
            0,
            opts,
        );
        assert_eq!(
            (store.misses(), store.hits()),
            (2, 1),
            "way memoization must warm-hit the D-NUCA checkpoint"
        );
        assert_eq!(memo_direct, memo_warm, "warm restore changed way-memo results");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_digest_is_stable_and_total() {
        let app = by_name("galgel").unwrap();
        let k = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        assert_eq!(run_digest(&app, &k, tiny()), run_digest(&app, &k, tiny()));

        // Every axis of the job identity must move the digest.
        let base = run_digest(&app, &k, tiny());
        let variants = [
            run_digest(&by_name("wupwise").unwrap(), &k, tiny()),
            run_digest(&app, &L2Kind::Base, tiny()),
            run_digest(&app, &L2Kind::Coupled(4), tiny()),
            run_digest(&app, &L2Kind::Dnuca(SearchPolicy::SsEnergy), tiny()),
            run_digest(&app, &L2Kind::NuRapid(NuRapidConfig::micro2003(8)), tiny()),
            run_digest(&app, &k, Scale { warmup: 40_000, measure: 60_001 }),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} aliased the base digest");
        }
    }

    #[test]
    fn run_digest_separates_every_nurapid_knob() {
        use nurapid::{DistanceVictimPolicy, PromotionPolicy};
        let app = by_name("galgel").unwrap();
        let d = |c: NuRapidConfig| run_digest(&app, &L2Kind::NuRapid(c), tiny());
        let base = NuRapidConfig::micro2003(4);
        let mut reseeded = base.clone();
        reseeded.seed ^= 1;
        let knobs = [
            d(base.clone().with_promotion(PromotionPolicy::DemotionOnly)),
            d(base.clone().with_promotion(PromotionPolicy::Fastest)),
            d(base.clone().with_distance_victim(DistanceVictimPolicy::Lru)),
            d(base.clone().with_distance_victim(DistanceVictimPolicy::ClockApprox)),
            d(base.clone().with_ideal()),
            d(base.clone().with_frames_per_region(256)),
            d(base.clone().with_frames_per_region(64)),
            d(reseeded),
        ];
        let baseline = d(base);
        for (i, k) in knobs.iter().enumerate() {
            assert_ne!(baseline, *k, "knob {i} not captured by the digest");
        }
        // And all knob variants are mutually distinct.
        for i in 0..knobs.len() {
            for j in i + 1..knobs.len() {
                assert_ne!(knobs[i], knobs[j], "knobs {i} and {j} collide");
            }
        }
    }

    #[test]
    fn l4_digests_separate_the_tier_and_share_timing_knobs() {
        let app = by_name("galgel").unwrap();
        let inner = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let l4 = |c: L4Config| L2Kind::L4(Box::new(inner.clone()), c);
        let base = l4(L4Config::tdram());

        // Attaching an L4 is a different run and different warm state.
        assert_ne!(run_digest(&app, &inner, tiny()), run_digest(&app, &base, tiny()));
        assert_ne!(
            warmup_digest(&app, &inner, tiny()),
            warmup_digest(&app, &base, tiny())
        );

        // Geometry is architectural: it splits the warm-up digest.
        let mut small = L4Config::tdram();
        small.n_banks = 4;
        assert_ne!(
            warmup_digest(&app, &base, tiny()),
            warmup_digest(&app, &l4(small), tiny())
        );

        // Latency and tag-cache sizing are timing-only: their variants
        // share the warm checkpoint but stay distinct runs.
        let mut slow = L4Config::tdram();
        slow.base_latency += 20;
        slow.tag_cache_entries = 256;
        assert_eq!(
            warmup_digest(&app, &base, tiny()),
            warmup_digest(&app, &l4(slow.clone()), tiny())
        );
        assert_ne!(run_digest(&app, &base, tiny()), run_digest(&app, &l4(slow), tiny()));

        // The resize schedule applies to the measured phase only: it
        // enters the run digest but never the warm-up digest.
        let resized = l4(L4Config::tdram().with_resizes(vec![(1_000, 4)]));
        assert_eq!(
            warmup_digest(&app, &base, tiny()),
            warmup_digest(&app, &resized, tiny())
        );
        assert_ne!(run_digest(&app, &base, tiny()), run_digest(&app, &resized, tiny()));
    }

    #[test]
    fn l4_checkpointed_runs_are_bit_identical_cold_and_warm() {
        let app = by_name("parser").unwrap();
        let inner = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let kind = L2Kind::L4(
            Box::new(inner.clone()),
            L4Config::tdram().with_resizes(vec![(tiny().measure / 2, 4)]),
        );
        let sink = TelemetrySink::disabled();
        let direct = run_app_opts(app, &kind, tiny(), &sink, 0, RunOptions::default());

        let (dir, store) = temp_store("l4-cold-warm");
        let opts = RunOptions {
            checkpoints: Some(&store),
            ..Default::default()
        };
        let cold = run_app_opts(app, &kind, tiny(), &sink, 0, opts);
        let warm = run_app_opts(app, &kind, tiny(), &sink, 0, opts);
        assert_eq!((store.misses(), store.hits()), (1, 1));
        assert_eq!(direct, cold, "cold store changed the result");
        assert_eq!(cold, warm, "warm store changed the result");

        // The L4-enabled blob never serves the L4-free twin: the inner
        // organization builds (and reuses) its own checkpoint.
        let plain_direct = run_app_opts(app, &inner, tiny(), &sink, 0, RunOptions::default());
        let plain = run_app_opts(app, &inner, tiny(), &sink, 0, opts);
        assert_eq!((store.misses(), store.hits()), (2, 1));
        assert_eq!(plain_direct, plain, "L4-free twin changed under the shared store");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
