//! Full-system run machinery: one application through one lower-level
//! cache organization, with warm-up.

use cpu::uop::TraceSource;
use cpu::{CoreParams, CoreResult, OooCore};
use energy::core::CoreEnergyModel;
use energy::EnergyTally;
use memsys::hierarchy::BaseHierarchy;
use memsys::l1::CoreMemSystem;
use memsys::lower::LowerCache;
use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::coupled::CoupledCache;
use nurapid::{DistanceVictimPolicy, NuRapidCache, NuRapidConfig, PromotionPolicy};
use simbase::digest::{Digest, Hasher128};
use simbase::EnergyNj;
use simtel::TelemetrySink;
use workloads::{BenchProfile, TraceGenerator};

/// Seed of every run's trace generator (fixed: experiments vary the
/// cache organization, not the workload stream).
pub const TRACE_SEED: u64 = 0x5eed;

/// Which lower-level cache organization to simulate.
#[derive(Debug, Clone)]
pub enum L2Kind {
    /// Conventional 1-MB L2 + 8-MB L3 (the base case).
    Base,
    /// NuRAPID with the given configuration.
    NuRapid(NuRapidConfig),
    /// The Figure 4 set-associative-placement ablation with this many
    /// d-groups.
    Coupled(usize),
    /// D-NUCA with the given search policy.
    Dnuca(SearchPolicy),
}

/// Instruction budget for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Warm-up instructions (caches filled, statistics then reset) —
    /// the stand-in for the paper's 5 B-instruction fast-forward.
    pub warmup: u64,
    /// Measured instructions.
    pub measure: u64,
}

impl Scale {
    /// The default reproduction scale (used for EXPERIMENTS.md).
    pub fn full() -> Self {
        Scale {
            warmup: 1_000_000,
            measure: 2_000_000,
        }
    }

    /// A fast scale for tests and the simkit benches.
    pub fn quick() -> Self {
        Scale {
            warmup: 150_000,
            measure: 250_000,
        }
    }
}

impl L2Kind {
    /// Feeds every field of the configuration into `h`, discriminant
    /// first, so two organizations digest equal iff they simulate
    /// identically. This — not a label string — keys the run store and
    /// the on-disk artifacts.
    pub fn digest_into(&self, h: &mut Hasher128) {
        match self {
            L2Kind::Base => h.write_u8(0),
            L2Kind::NuRapid(c) => {
                h.write_u8(1);
                h.write_u64(c.capacity.bytes());
                h.write_u32(c.assoc);
                h.write_u64(c.n_dgroups as u64);
                h.write_u8(match c.promotion {
                    PromotionPolicy::DemotionOnly => 0,
                    PromotionPolicy::NextFastest => 1,
                    PromotionPolicy::Fastest => 2,
                });
                h.write_u8(match c.distance_victim {
                    DistanceVictimPolicy::Random => 0,
                    DistanceVictimPolicy::Lru => 1,
                    DistanceVictimPolicy::ClockApprox => 2,
                });
                h.write_u64(c.seed);
                h.write_bool(c.ideal);
                h.write_opt_u32(c.frames_per_region);
            }
            L2Kind::Coupled(n) => {
                h.write_u8(2);
                h.write_u64(*n as u64);
            }
            L2Kind::Dnuca(policy) => {
                h.write_u8(3);
                h.write_u8(match policy {
                    SearchPolicy::SsPerformance => 0,
                    SearchPolicy::SsEnergy => 1,
                });
            }
        }
    }
}

/// Digest of one schedulable job: the full application profile, the full
/// cache configuration, the instruction budget, and the trace seed.
/// Everything that determines an [`AppRun`] bit-for-bit is included, so
/// equal digests ⇒ interchangeable results (in-process or on disk).
pub fn run_digest(profile: &BenchProfile, kind: &L2Kind, scale: Scale) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-run-v1");
    h.write_str(profile.name);
    h.write_u8(profile.class as u8);
    h.write_bool(profile.fp);
    h.write_f64(profile.load_frac);
    h.write_f64(profile.store_frac);
    h.write_u32(profile.branch_every);
    h.write_f64(profile.branch_bias);
    h.write_f64(profile.l1_reuse);
    h.write_u64(profile.hot_footprint.bytes());
    h.write_f64(profile.hot_frac);
    h.write_u64(profile.stream_footprint.bytes());
    h.write_u32(profile.spatial_run);
    h.write_f64(profile.dep_load_frac);
    h.write_u64(profile.code_footprint.bytes());
    kind.digest_into(&mut h);
    h.write_u64(scale.warmup);
    h.write_u64(scale.measure);
    h.write_u64(TRACE_SEED);
    h.digest()
}

/// The measured results of one application on one organization.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRun {
    /// Application name.
    pub name: &'static str,
    /// Measured-phase core results.
    pub core: CoreResult,
    /// L2 accesses during the measured phase.
    pub l2_accesses: u64,
    /// L2 misses during the measured phase.
    pub l2_misses: u64,
    /// Fraction of L2 accesses hitting each d-group / bank-position-MB
    /// (empty for the base hierarchy).
    pub group_fracs: Vec<f64>,
    /// Fraction of L2 accesses that missed.
    pub miss_frac: f64,
    /// Total data-array (d-group or bank) accesses including swap and
    /// search traffic (0 for the base hierarchy).
    pub dgroup_accesses: u64,
    /// Block movements (promotions + demotions or bubble swaps).
    pub swaps: u64,
    /// Dynamic L2 energy over the measured phase.
    pub l2_energy: EnergyNj,
    /// Full-system energy tally over the measured phase.
    pub energy: EnergyTally,
}

impl AppRun {
    /// Measured IPC.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// L2 accesses per kilo-instruction (Table 3's metric).
    pub fn apki(&self) -> f64 {
        1000.0 * self.l2_accesses as f64 / self.core.instructions.max(1) as f64
    }

    /// Energy-delay product (relative unit).
    pub fn edp(&self) -> f64 {
        self.energy.energy_delay(self.core.cycles)
    }
}

/// Runs `profile` on the organization `kind` at `scale` with telemetry
/// disabled (the common path; identical to
/// [`run_app_telemetry`] with a disabled sink).
pub fn run_app(profile: BenchProfile, kind: &L2Kind, scale: Scale) -> AppRun {
    run_app_telemetry(profile, kind, scale, &TelemetrySink::disabled(), 0)
}

/// Runs `profile` on the organization `kind` at `scale`, recording
/// metrics, cycle-stamped spans, and periodic progress snapshots (every
/// `snap_every` cycles) into `sink`. Warm-up telemetry is discarded when
/// the statistics reset, so the sink reflects the measured phase only —
/// the same window the printed tables report.
pub fn run_app_telemetry(
    profile: BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    sink: &TelemetrySink,
    snap_every: u64,
) -> AppRun {
    match kind {
        L2Kind::Base => {
            let lower = BaseHierarchy::micro2003();
            let (core, mem) = drive(profile, lower, scale, sink, snap_every);
            let h = mem.lower();
            let mem_accesses = h.memory_accesses();
            let l2_energy = energy::l2::base_energy(h);
            finish_run(
                profile.name,
                core,
                mem.l1_accesses(),
                mem_accesses,
                h.l2_accesses(),
                h.l2_accesses() - h.l2_hits(),
                Vec::new(),
                1.0 - h.l2_hits() as f64 / h.l2_accesses().max(1) as f64,
                0,
                0,
                l2_energy,
            )
        }
        L2Kind::NuRapid(cfg) => {
            let lower = NuRapidCache::new(cfg.clone());
            let (core, mem) = drive(profile, lower, scale, sink, snap_every);
            let c = mem.lower();
            let s = c.stats();
            let l2_energy = energy::l2::nurapid_energy(s, c.geometry());
            let group_fracs = (0..s.n_dgroups()).map(|g| s.group_access_frac(g)).collect();
            finish_run(
                profile.name,
                core,
                mem.l1_accesses(),
                s.memory_reads.get() + s.writebacks.get(),
                s.accesses.get(),
                s.misses.get(),
                group_fracs,
                s.miss_frac(),
                s.total_dgroup_accesses(),
                s.total_moves(),
                l2_energy,
            )
        }
        L2Kind::Coupled(n) => {
            let lower = CoupledCache::micro2003(*n);
            let (core, mem) = drive(profile, lower, scale, sink, snap_every);
            let c = mem.lower();
            let s = c.stats();
            let l2_energy = energy::l2::nurapid_energy(s, c.geometry());
            let group_fracs = (0..s.n_dgroups()).map(|g| s.group_access_frac(g)).collect();
            finish_run(
                profile.name,
                core,
                mem.l1_accesses(),
                s.memory_reads.get() + s.writebacks.get(),
                s.accesses.get(),
                s.misses.get(),
                group_fracs,
                s.miss_frac(),
                s.total_dgroup_accesses(),
                s.total_moves(),
                l2_energy,
            )
        }
        L2Kind::Dnuca(policy) => {
            let lower = DnucaCache::new(DnucaConfig::micro2003(*policy));
            let (core, mem) = drive(profile, lower, scale, sink, snap_every);
            let c = mem.lower();
            let s = c.stats();
            let l2_energy = energy::l2::dnuca_energy(s, c.geometry());
            let group_fracs = (0..8).map(|p| s.position_access_frac(p)).collect();
            finish_run(
                profile.name,
                core,
                mem.l1_accesses(),
                s.memory_reads.get() + s.writebacks.get(),
                s.accesses.get(),
                s.misses.get(),
                group_fracs,
                s.miss_frac(),
                s.total_bank_accesses(),
                s.swaps.get(),
                l2_energy,
            )
        }
    }
}

/// Runs the trace through the core, handling prefill, warm-up, and stat
/// resets.
fn drive<L: LowerCache + ExperimentCache>(
    profile: BenchProfile,
    mut lower: L,
    scale: Scale,
    sink: &TelemetrySink,
    snap_every: u64,
) -> (CoreResult, CoreMemSystem<L>) {
    let mut gen = TraceGenerator::new(profile, TRACE_SEED);
    lower.prefill_dyn();
    lower.set_telemetry_dyn(sink, snap_every);
    let mut mem = CoreMemSystem::micro2003(lower);
    mem.set_telemetry(sink.clone());
    let mut core = OooCore::new(CoreParams::micro2003(), mem);
    core.set_telemetry(sink.clone(), snap_every);
    for _ in 0..scale.warmup {
        let op = gen.next_op();
        core.execute(op);
    }
    let snapshot = core.finish();
    core.mem_mut().reset_stats();
    core.mem_mut().lower_mut().reset_stats_dyn();
    // Telemetry follows the statistics reset: drop the warm-up metrics
    // and spans so the exported snapshot matches the measured window.
    sink.reset();
    for _ in 0..scale.measure {
        let op = gen.next_op();
        core.execute(op);
    }
    let result = core.finish().since(&snapshot);
    (result, core.into_mem())
}

#[allow(clippy::too_many_arguments)]
fn finish_run(
    name: &'static str,
    core: CoreResult,
    l1_accesses: u64,
    mem_accesses: u64,
    l2_accesses: u64,
    l2_misses: u64,
    group_fracs: Vec<f64>,
    miss_frac: f64,
    dgroup_accesses: u64,
    swaps: u64,
    l2_energy: EnergyNj,
) -> AppRun {
    let m = CoreEnergyModel::micro2003();
    let energy = EnergyTally {
        core: m.core_energy(&core),
        l1: m.l1_energy(l1_accesses),
        l2: l2_energy,
        memory: m.memory_energy(mem_accesses),
    };
    AppRun {
        name,
        core,
        l2_accesses,
        l2_misses,
        group_fracs,
        miss_frac,
        dgroup_accesses,
        swaps,
        l2_energy,
        energy,
    }
}

/// Warm-up support: every lower-level cache can pre-fill to steady-state
/// occupancy, zero its statistics, and attach a telemetry sink.
trait ExperimentCache {
    fn prefill_dyn(&mut self);
    fn reset_stats_dyn(&mut self);
    fn set_telemetry_dyn(&mut self, sink: &TelemetrySink, snap_every: u64);
}

impl ExperimentCache for BaseHierarchy {
    fn prefill_dyn(&mut self) {
        self.prefill();
    }
    fn reset_stats_dyn(&mut self) {
        self.reset_stats();
    }
    fn set_telemetry_dyn(&mut self, sink: &TelemetrySink, snap_every: u64) {
        self.set_telemetry(sink.clone(), snap_every);
    }
}

impl ExperimentCache for NuRapidCache {
    fn prefill_dyn(&mut self) {
        self.prefill();
    }
    fn reset_stats_dyn(&mut self) {
        self.reset_stats();
    }
    fn set_telemetry_dyn(&mut self, sink: &TelemetrySink, snap_every: u64) {
        self.set_telemetry(sink.clone(), snap_every);
    }
}

impl ExperimentCache for CoupledCache {
    fn prefill_dyn(&mut self) {
        self.prefill();
    }
    fn reset_stats_dyn(&mut self) {
        self.reset_stats();
    }
    fn set_telemetry_dyn(&mut self, sink: &TelemetrySink, _snap_every: u64) {
        self.set_telemetry(sink.clone());
    }
}

impl ExperimentCache for DnucaCache {
    fn prefill_dyn(&mut self) {
        self.prefill();
    }
    fn reset_stats_dyn(&mut self) {
        self.reset_stats();
    }
    fn set_telemetry_dyn(&mut self, sink: &TelemetrySink, _snap_every: u64) {
        self.set_telemetry(sink.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::profiles::by_name;

    fn tiny() -> Scale {
        Scale {
            warmup: 30_000,
            measure: 60_000,
        }
    }

    #[test]
    fn base_run_produces_sane_numbers() {
        let r = run_app(by_name("applu").unwrap(), &L2Kind::Base, tiny());
        assert_eq!(r.core.instructions, 60_000);
        assert!(r.ipc() > 0.05 && r.ipc() < 8.0, "ipc={}", r.ipc());
        assert!(r.apki() > 1.0, "high-load app must reach the L2: {}", r.apki());
        assert!(r.energy.total().nj() > 0.0);
        assert!(r.group_fracs.is_empty());
    }

    #[test]
    fn nurapid_run_reports_group_fractions() {
        let r = run_app(
            by_name("galgel").unwrap(),
            &L2Kind::NuRapid(NuRapidConfig::micro2003(4)),
            tiny(),
        );
        assert_eq!(r.group_fracs.len(), 4);
        let total: f64 = r.group_fracs.iter().sum::<f64>() + r.miss_frac;
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to 1, got {total}");
        assert!(r.group_fracs[0] > 0.3, "galgel's 1-MB hot set is fast");
    }

    #[test]
    fn dnuca_run_reports_position_fractions() {
        let r = run_app(
            by_name("galgel").unwrap(),
            &L2Kind::Dnuca(SearchPolicy::SsPerformance),
            tiny(),
        );
        assert_eq!(r.group_fracs.len(), 8);
        assert!(r.dgroup_accesses > r.l2_accesses, "multicast searches many banks");
    }

    #[test]
    fn low_load_app_rarely_reaches_l2() {
        let r = run_app(by_name("wupwise").unwrap(), &L2Kind::Base, tiny());
        assert!(r.apki() < 15.0, "low-load apki={}", r.apki());
    }

    #[test]
    fn deterministic_across_runs() {
        let k = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let a = run_app(by_name("parser").unwrap(), &k, tiny());
        let b = run_app(by_name("parser").unwrap(), &k, tiny());
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.l2_accesses, b.l2_accesses);
    }

    #[test]
    fn run_digest_is_stable_and_total() {
        let app = by_name("galgel").unwrap();
        let k = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        assert_eq!(run_digest(&app, &k, tiny()), run_digest(&app, &k, tiny()));

        // Every axis of the job identity must move the digest.
        let base = run_digest(&app, &k, tiny());
        let variants = [
            run_digest(&by_name("wupwise").unwrap(), &k, tiny()),
            run_digest(&app, &L2Kind::Base, tiny()),
            run_digest(&app, &L2Kind::Coupled(4), tiny()),
            run_digest(&app, &L2Kind::Dnuca(SearchPolicy::SsEnergy), tiny()),
            run_digest(&app, &L2Kind::NuRapid(NuRapidConfig::micro2003(8)), tiny()),
            run_digest(&app, &k, Scale { warmup: 40_000, measure: 60_001 }),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} aliased the base digest");
        }
    }

    #[test]
    fn run_digest_separates_every_nurapid_knob() {
        use nurapid::{DistanceVictimPolicy, PromotionPolicy};
        let app = by_name("galgel").unwrap();
        let d = |c: NuRapidConfig| run_digest(&app, &L2Kind::NuRapid(c), tiny());
        let base = NuRapidConfig::micro2003(4);
        let mut reseeded = base.clone();
        reseeded.seed ^= 1;
        let knobs = [
            d(base.clone().with_promotion(PromotionPolicy::DemotionOnly)),
            d(base.clone().with_promotion(PromotionPolicy::Fastest)),
            d(base.clone().with_distance_victim(DistanceVictimPolicy::Lru)),
            d(base.clone().with_distance_victim(DistanceVictimPolicy::ClockApprox)),
            d(base.clone().with_ideal()),
            d(base.clone().with_frames_per_region(256)),
            d(base.clone().with_frames_per_region(64)),
            d(reseeded),
        ];
        let baseline = d(base);
        for (i, k) in knobs.iter().enumerate() {
            assert_ne!(baseline, *k, "knob {i} not captured by the digest");
        }
        // And all knob variants are mutually distinct.
        for i in 0..knobs.len() {
            for j in i + 1..knobs.len() {
                assert_ne!(knobs[i], knobs[j], "knobs {i} and {j} collide");
            }
        }
    }
}
