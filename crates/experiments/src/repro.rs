//! The canonical reproduction report: experiment order, headers, and
//! rendering shared by the `repro` binary and the golden-snapshot guard
//! test.
//!
//! The `repro` binary's stdout is a promise: `tests/golden/repro_quick.txt`
//! pins the `--quick` report byte-for-byte, and the differential test
//! layer relies on that pin to prove hot-path rewrites change nothing
//! observable. Keeping the experiment list and per-experiment rendering
//! here — rather than duplicated in the binary and the test — means the
//! two cannot drift apart.

use crate::exps::{self, Sweep};

/// Experiment ids in rendering order, paired with the configuration keys
/// each one needs (the prewarm set handed to the worker pool).
pub const EXPERIMENTS: &[(&str, &[&str])] = &[
    ("table2", &[]),
    ("table4", &[]),
    ("table3", &["base"]),
    ("fig4", &["sa4", "nf4"]),
    ("fig5", &["dm4", "nf4", "fs4"]),
    ("fig6", &["base", "dm4", "nf4", "fs4", "id4"]),
    ("lru", &["dm4", "clock-dm", "lru-dm", "nf4", "clock-nf", "lru-nf"]),
    ("fig7", &["nf2", "nf4", "nf8"]),
    ("fig8", &["base", "nf2", "nf4", "nf8"]),
    ("fig9", &["base", "dn-perf", "nf4", "nf8"]),
    ("fig10", &["base", "dn-energy", "nf4"]),
    ("fig11", &["base", "dn-perf", "dn-energy", "nf4"]),
    ("restrict", &["base", "nf4", "nf4-r256", "nf4-r64"]),
    ("orgs", &["base", "dn-perf", "dn-energy", "dn-memo", "cnuca"]),
    // `cmp` prewarms nothing here: its jobs are CMP scenarios, prefetched
    // on the worker pool by `cmp::cmp_table` itself.
    ("cmp", &[]),
];

/// The union of every listed experiment's configuration keys, in first-use
/// order — the prewarm set for [`Sweep::prefetch_all`].
pub fn prewarm_keys(ids: &[&str]) -> Vec<&'static str> {
    let mut keys: Vec<&'static str> = Vec::new();
    for (id, wanted) in EXPERIMENTS {
        if ids.contains(id) {
            for k in wanted.iter() {
                if !keys.contains(k) {
                    keys.push(k);
                }
            }
        }
    }
    keys
}

/// Resolves a `--exp` selector to the experiment ids it names, in
/// rendering order: `"all"` expands to every experiment, a known id to
/// itself, and an unknown id to `None`.
pub fn resolve_ids(exp: &str) -> Option<Vec<&'static str>> {
    if exp == "all" {
        return Some(EXPERIMENTS.iter().map(|&(id, _)| id).collect());
    }
    // `dram` is opt-in only: not part of `all` (which pins the L4-free
    // golden report), but a valid explicit selector. It prewarms nothing
    // here — `exps::dram` prefetches its own transient jobs.
    if exp == "dram" {
        return Some(vec!["dram"]);
    }
    // `sampling` is opt-in for the same reason: the error-vs-speedup
    // study runs full-detail baselines alongside its sampled estimates,
    // so folding it into `all` would double the cost of the pinned
    // report. `exps::sampling` prefetches its own jobs.
    if exp == "sampling" {
        return Some(vec!["sampling"]);
    }
    EXPERIMENTS.iter().find(|&&(id, _)| id == exp).map(|&(id, _)| vec![id])
}

/// Renders a selection of experiments exactly as the `repro` binary
/// prints them to stdout: the union of their configuration keys is
/// prewarmed on the sweep's worker pool, then each experiment's text
/// (or TSV, when requested and the experiment has one) is emitted
/// followed by a newline. This is the single rendering entry point
/// shared by the `repro` binary and the `simserve` daemon, so a served
/// report cannot drift from the in-process one by a byte.
///
/// # Panics
///
/// Panics on an id not present in [`EXPERIMENTS`]; validate selectors
/// with [`resolve_ids`] first.
pub fn render_selection(ids: &[&str], sweep: &Sweep, tsv: bool) -> String {
    render_selection_cores(ids, sweep, tsv, crate::cmp::CMP_CORES)
}

/// [`render_selection`] with an explicit CMP core-count list (the
/// `--cores` flag): the `cmp` experiment sweeps `cores` instead of its
/// default 2/4/8, every other experiment is unaffected.
///
/// # Panics
///
/// Panics on an id not present in [`EXPERIMENTS`]; validate selectors
/// with [`resolve_ids`] first.
pub fn render_selection_cores(ids: &[&str], sweep: &Sweep, tsv: bool, cores: &[u32]) -> String {
    let keys = prewarm_keys(ids);
    if !keys.is_empty() {
        sweep.prefetch_all(&keys);
    }
    let mut out = String::new();
    for id in ids {
        let text = if *id == "cmp" {
            let table = crate::cmp::cmp_table(sweep, cores);
            Some(if tsv { table.render_tsv() } else { table.render() })
        } else if tsv {
            render_experiment_tsv(id, sweep)
        } else {
            None
        };
        let text = text
            .or_else(|| render_experiment(id, sweep))
            .unwrap_or_else(|| panic!("unknown experiment id {id:?}"));
        out.push_str(&text);
        out.push('\n');
    }
    out
}

/// Renders one experiment exactly as `repro` prints it (text mode).
/// Returns `None` for an unknown id.
pub fn render_experiment(id: &str, sweep: &Sweep) -> Option<String> {
    Some(match id {
        "table2" => format!("Table 2: cache energies (nJ)\n{}", exps::table2().render()),
        "table3" => format!(
            "Table 3: applications and base-case characterization\n{}",
            exps::table3(sweep).render()
        ),
        "table4" => format!("Table 4: cache latencies (cycles)\n{}", exps::table4().render()),
        "fig4" => exps::fig4(sweep).render(),
        "fig5" => exps::fig5(sweep).render(),
        "fig6" => exps::fig6(sweep).render(),
        "lru" => exps::sec531(sweep).render(),
        "fig7" => exps::fig7(sweep).render(),
        "fig8" => exps::fig8(sweep).render(),
        "fig9" => exps::fig9(sweep).render(),
        "fig10" => exps::fig10(sweep).render(),
        "fig11" => exps::fig11(sweep).render(),
        "restrict" => exps::restriction_ablation(sweep).render(),
        "orgs" => exps::orgs(sweep).render(),
        "cmp" => crate::cmp::cmp_table(sweep, crate::cmp::CMP_CORES).render(),
        "dram" => exps::dram(sweep).render(),
        "sampling" => exps::sampling(sweep).render(),
        _ => return None,
    })
}

/// Renders one experiment's machine-readable TSV, for the experiments
/// that have one. Returns `None` when the id has no TSV form (callers
/// fall back to [`render_experiment`]).
pub fn render_experiment_tsv(id: &str, sweep: &Sweep) -> Option<String> {
    Some(match id {
        "fig4" => exps::fig4(sweep).render_tsv(),
        "fig5" => exps::fig5(sweep).render_tsv(),
        "fig6" => exps::fig6(sweep).render_tsv(),
        "fig7" => exps::fig7(sweep).render_tsv(),
        "fig8" => exps::fig8(sweep).render_tsv(),
        "fig9" => exps::fig9(sweep).render_tsv(),
        "cmp" => crate::cmp::cmp_table(sweep, crate::cmp::CMP_CORES).render_tsv(),
        _ => return None,
    })
}

/// The complete text report — every experiment in [`EXPERIMENTS`] order,
/// each followed by the newline `println!` appends — byte-identical to
/// the `repro` binary's stdout for the same scale.
pub fn render_report(sweep: &Sweep) -> String {
    let ids = resolve_ids("all").expect("'all' always resolves");
    render_selection(&ids, sweep, false)
}
