//! One experiment per paper table and figure.
//!
//! Every experiment returns a plain data structure with a `render()`
//! method producing the text table the `repro` binary prints. Full-system
//! runs are shared through the [`Sweep`] run store so, e.g., Figure 6 and
//! Figure 9 reuse the same base-case runs — including when they request
//! them concurrently from the simsched worker pool.

use crate::artifact;
use crate::checkpoint::CheckpointStore;
use crate::cmp::CmpRun;
use crate::report::{f2, pct, rel, TextTable};
use crate::runner::{
    run_app_opts, run_app_transient, run_digest, AppRun, L2Kind, RunOptions, Scale,
    TransientWindow, WarmupMode,
};
use crate::sampling::{self, SampleSpec, SampledRun};
use cachemodel::catalog::{self, DnucaGeometry, NuRapidGeometry};
use memsys::dramcache::L4Config;
use nuca::{CnucaConfig, SearchPolicy};
use nurapid::{DistanceVictimPolicy, NuRapidConfig, PromotionPolicy};
use simbase::digest::{Digest, Hasher128};
use simbase::stats::GeoMean;
use simbase::Capacity;
use simsched::progress::{Event, EventKind, Observer, Outcome};
use simsched::store::RunStore;
use simsched::{pool, ArtifactStore};
use simtel::{Telemetry, TelemetrySink, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use workloads::profiles::{BenchProfile, LoadClass, ROSTER};

/// A store of full-system runs keyed by the **digest of the full
/// configuration** (application profile + organization + scale + seed),
/// executed through the simsched subsystem.
///
/// Compared to the original serial `HashMap` sweep:
///
/// - runs execute on up to [`Sweep::with_threads`] worker threads via
///   [`Sweep::prefetch`], with results independent of thread count;
/// - every (application, configuration) pair simulates **exactly once**
///   process-wide, even under concurrent requests (single-flight);
/// - keys are digests, so two distinct configurations can never alias
///   through a shared label (the old `(&str, &str)` keying hazard);
/// - with [`Sweep::with_artifacts`], completed runs are appended to a
///   JSON-lines manifest and a later sweep *resumes*, loading
///   digest-matching artifacts instead of re-simulating.
pub struct Sweep {
    scale: Scale,
    apps: Vec<BenchProfile>,
    threads: usize,
    store: RunStore<u128, AppRun>,
    cmp_store: RunStore<u128, CmpRun>,
    dram_store: RunStore<u128, DramRun>,
    sampled_store: RunStore<u128, SampledRun>,
    l4: Option<L4Config>,
    sample: Option<SampleSpec>,
    intervals: u64,
    artifacts: Option<ArtifactStore>,
    checkpoints: Option<Arc<CheckpointStore>>,
    warmup: WarmupMode,
    observer: Option<Observer>,
    telemetry: Option<Arc<Telemetry>>,
    simulated: AtomicU64,
    resumed: AtomicU64,
}

impl Sweep {
    /// A sweep over the full 15-application roster.
    pub fn new(scale: Scale) -> Self {
        Sweep::with_apps(scale, ROSTER.to_vec())
    }

    /// A sweep over a subset of applications (for tests and benches).
    pub fn with_apps(scale: Scale, apps: Vec<BenchProfile>) -> Self {
        assert!(!apps.is_empty(), "sweep needs at least one application");
        Sweep {
            scale,
            apps,
            threads: 1,
            store: RunStore::new(),
            cmp_store: RunStore::new(),
            dram_store: RunStore::new(),
            sampled_store: RunStore::new(),
            l4: None,
            sample: None,
            intervals: 1,
            artifacts: None,
            checkpoints: None,
            warmup: WarmupMode::default(),
            observer: None,
            telemetry: None,
            simulated: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
        }
    }

    /// Sets the worker-thread count used by [`Sweep::prefetch`].
    /// Results are bit-identical for any value; this only changes wall
    /// time. Defaults to 1 (serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a run-artifact directory: completed runs are appended to
    /// its JSON-lines manifest, and runs whose digest already appears
    /// there are loaded instead of simulated (resume).
    pub fn with_artifacts(mut self, dir: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        self.artifacts = Some(ArtifactStore::open(dir)?);
        Ok(self)
    }

    /// Attaches a warm-up checkpoint directory: simulated runs restore
    /// warm architectural state from digest-matching checkpoints instead
    /// of re-executing warm-up, and publish freshly built checkpoints for
    /// later sweeps. Results are bit-identical with or without a store
    /// (see the `runner` differential tests); only wall time changes.
    pub fn with_checkpoints(
        mut self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        self.checkpoints = Some(Arc::new(CheckpointStore::open(dir)?));
        Ok(self)
    }

    /// Attaches an **existing** checkpoint store (shared with other
    /// sweeps — e.g. every per-request sweep of the serving daemon
    /// shares one store so its hit/miss counters are daemon-wide).
    #[must_use]
    pub fn with_checkpoint_store(mut self, store: Arc<CheckpointStore>) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// The attached checkpoint store, if any (for hit/miss reporting).
    pub fn checkpoints(&self) -> Option<&CheckpointStore> {
        self.checkpoints.as_deref()
    }

    /// Switches every keyed run to **sampled** execution (the `--sample`
    /// knob, DESIGN.md §16): [`Sweep::run`] estimates each
    /// [`AppRun`] through [`sampling::run_app_sampled`] and
    /// [`Sweep::run_cmp`] alternates detailed windows with functional
    /// fast-forward. Sampled runs digest under their own domain tags, so
    /// they can never alias full runs in the stores or on disk; with
    /// `None` (the default) every byte of every report is identical to a
    /// build without this method.
    #[must_use]
    pub fn with_sample(mut self, sample: Option<SampleSpec>) -> Self {
        self.sample = sample;
        self
    }

    /// Sets the interval count sampled single-app runs are split into
    /// (the `--intervals` knob; default 1). The count is part of the
    /// sampled digest — results are bit-identical for any *thread* count
    /// at a fixed interval count, while different interval counts are
    /// different (equally valid) estimators keyed apart.
    #[must_use]
    pub fn with_intervals(mut self, intervals: u64) -> Self {
        self.intervals = intervals.max(1);
        self
    }

    /// The sampling regime keyed runs execute under, if any.
    pub fn sample(&self) -> Option<SampleSpec> {
        self.sample
    }

    /// The interval count for sampled single-app runs.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Attaches an L4 DRAM-cache tier (the `--l4` knob, DESIGN.md §15):
    /// every keyed run — [`Sweep::run`] and [`Sweep::run_cmp`] — wraps
    /// its organization in [`L2Kind::L4`] with this configuration. The
    /// wrapped configuration digests differently, so L4 runs can never
    /// alias their unwrapped twins in the store or on disk; with `None`
    /// (the default) every byte of every report is identical to a build
    /// without this method.
    #[must_use]
    pub fn with_l4(mut self, l4: Option<L4Config>) -> Self {
        self.l4 = l4;
        self
    }

    /// Wraps a keyed organization in the sweep-wide L4 tier, when one is
    /// configured.
    fn wrap_l4(&self, kind: L2Kind) -> L2Kind {
        match &self.l4 {
            Some(cfg) => L2Kind::L4(Box::new(kind), cfg.clone()),
            None => kind,
        }
    }

    /// Selects the warm-up mode (default: functional fast-forward).
    /// [`WarmupMode::Timed`] re-enables the full-timing warm-up as a
    /// differential oracle — results are bit-identical either way.
    #[must_use]
    pub fn with_warmup(mut self, warmup: WarmupMode) -> Self {
        self.warmup = warmup;
        self
    }

    /// Installs a progress-event observer (see [`simsched::progress`]).
    #[must_use]
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a telemetry collector: every simulated run records its
    /// metrics, cycle-stamped spans, and periodic progress snapshots
    /// under `label/app`, keyed by the configuration digest. Resumed
    /// runs record their summary fields only (their spans were not
    /// replayed). Results are unchanged — telemetry observes the runs,
    /// it never steers them.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The applications in this sweep.
    pub fn apps(&self) -> &[BenchProfile] {
        &self.apps
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn emit(&self, label: &str, kind: EventKind) {
        if let Some(obs) = &self.observer {
            obs(&Event {
                label: label.to_string(),
                kind,
            });
        }
    }

    /// Runs (or returns the stored run of) `app` on the configuration
    /// named `key`.
    pub fn run(&self, app: BenchProfile, key: &'static str) -> Arc<AppRun> {
        self.run_kind(app, key, &self.wrap_l4(kind_of(key)))
    }

    /// Runs `app` on an explicit organization. `label` is only for
    /// progress display — the store is keyed by the digest of `kind`, so
    /// two different configurations sharing a label cannot collide.
    /// Under [`Sweep::with_sample`] the run is a sampled estimate.
    pub fn run_kind(&self, app: BenchProfile, label: &str, kind: &L2Kind) -> Arc<AppRun> {
        match self.sample {
            Some(spec) => self.run_kind_sampled(app, label, kind, spec),
            None => self.run_kind_full(app, label, kind),
        }
    }

    /// Runs `app` on the configuration named `key` with full detail,
    /// regardless of [`Sweep::with_sample`] — the baseline leg of the
    /// sampling error study.
    pub fn run_full(&self, app: BenchProfile, key: &'static str) -> Arc<AppRun> {
        self.run_kind_full(app, key, &self.wrap_l4(kind_of(key)))
    }

    fn run_kind_full(&self, app: BenchProfile, label: &str, kind: &L2Kind) -> Arc<AppRun> {
        let digest = run_digest(&app, kind, self.scale);
        let event_label = format!("{label}/{}", app.name);
        self.emit(&event_label, EventKind::Started);
        let t0 = Instant::now();

        // `outcome` stays `None` when the single-flight store satisfies
        // the request from another requester's completed computation.
        let mut outcome = None;
        let run = self.store.get_or_compute(digest.raw(), || {
            if let Some(store) = &self.artifacts {
                if let Some(run) = store.lookup(&digest.hex()).as_ref().and_then(artifact::decode)
                {
                    self.resumed.fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = &self.telemetry {
                        tel.record_run(
                            &event_label,
                            &digest.hex(),
                            run_fields(&run),
                            &TelemetrySink::disabled(),
                        );
                    }
                    outcome = Some(Outcome::Resumed);
                    return run;
                }
            }
            let opts = RunOptions {
                mode: self.warmup,
                checkpoints: self.checkpoints.as_deref(),
                wall: self.telemetry.as_deref(),
            };
            let run = match &self.telemetry {
                Some(tel) => {
                    let sink = tel.run_sink();
                    let run =
                        run_app_opts(app, kind, self.scale, &sink, tel.snap_cycles(), opts);
                    tel.record_run(&event_label, &digest.hex(), run_fields(&run), &sink);
                    run
                }
                None => run_app_opts(
                    app,
                    kind,
                    self.scale,
                    &TelemetrySink::disabled(),
                    0,
                    opts,
                ),
            };
            self.simulated.fetch_add(1, Ordering::Relaxed);
            if let Some(store) = &self.artifacts {
                // Best-effort: an unwritable artifact dir degrades to a
                // plain in-memory sweep rather than failing the run.
                let _ = store.append(&digest.hex(), artifact::encode(&run));
            }
            outcome = Some(Outcome::Simulated);
            run
        });

        self.emit(
            &event_label,
            EventKind::Finished {
                outcome: outcome.unwrap_or(Outcome::Shared),
                wall_ns: t0.elapsed().as_nanos() as u64,
            },
        );
        run
    }

    /// The sampled twin of [`Sweep::run_kind_full`]: same single-flight
    /// store, same artifact resume (the estimated [`AppRun`] reuses the
    /// plain `"app"` codec under the sampled digest), same telemetry
    /// recording — but the simulation is
    /// [`sampling::run_app_sampled`] with the sweep's interval count,
    /// fanning the intervals out on the sweep's worker-thread budget.
    fn run_kind_sampled(
        &self,
        app: BenchProfile,
        label: &str,
        kind: &L2Kind,
        spec: SampleSpec,
    ) -> Arc<AppRun> {
        let digest = sampling::sampled_digest(&app, kind, self.scale, spec, self.intervals);
        let event_label = format!("{label}/{}", app.name);
        self.emit(&event_label, EventKind::Started);
        let t0 = Instant::now();

        let mut outcome = None;
        let run = self.store.get_or_compute(digest.raw(), || {
            if let Some(store) = &self.artifacts {
                if let Some(run) = store.lookup(&digest.hex()).as_ref().and_then(artifact::decode)
                {
                    self.resumed.fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = &self.telemetry {
                        tel.record_run(
                            &event_label,
                            &digest.hex(),
                            run_fields(&run),
                            &TelemetrySink::disabled(),
                        );
                    }
                    outcome = Some(Outcome::Resumed);
                    return run;
                }
            }
            let opts = RunOptions {
                mode: self.warmup,
                checkpoints: self.checkpoints.as_deref(),
                wall: self.telemetry.as_deref(),
            };
            let sampled = sampling::run_app_sampled(
                app,
                kind,
                self.scale,
                spec,
                self.intervals,
                self.threads,
                opts,
            );
            let run = sampled.run;
            if let Some(tel) = &self.telemetry {
                tel.record_run(
                    &event_label,
                    &digest.hex(),
                    run_fields(&run),
                    &TelemetrySink::disabled(),
                );
            }
            self.simulated.fetch_add(1, Ordering::Relaxed);
            if let Some(store) = &self.artifacts {
                let _ = store.append(&digest.hex(), artifact::encode(&run));
            }
            outcome = Some(Outcome::Simulated);
            run
        });

        self.emit(
            &event_label,
            EventKind::Finished {
                outcome: outcome.unwrap_or(Outcome::Shared),
                wall_ns: t0.elapsed().as_nanos() as u64,
            },
        );
        run
    }

    /// Runs (or returns the stored run of) the CMP scenario with `cores`
    /// cores sharing the configuration named `key` (see [`crate::cmp`]).
    /// CMP runs live in their own digest-keyed single-flight store with
    /// the same artifact-resume and checkpoint behavior as [`Sweep::run`];
    /// the `simulated`/`resumed` counters are shared, so status lines and
    /// the CI resume proof account for both families.
    pub fn run_cmp(&self, cores: u32, key: &'static str) -> Arc<CmpRun> {
        let kind = self.wrap_l4(kind_of(key));
        let cfg = ::cmp::CmpConfig::micro2003(cores);
        let apps = crate::cmp::cmp_profiles(cores);
        let digest = match self.sample {
            Some(spec) => {
                crate::cmp::cmp_sampled_digest(&cfg, &apps, &kind, self.scale, spec)
            }
            None => crate::cmp::cmp_run_digest(&cfg, &apps, &kind, self.scale),
        };
        let event_label = format!("cmp{cores}x/{key}");
        self.emit(&event_label, EventKind::Started);
        let t0 = Instant::now();

        let mut outcome = None;
        let run = self.cmp_store.get_or_compute(digest.raw(), || {
            if let Some(store) = &self.artifacts {
                if let Some(run) =
                    store.lookup(&digest.hex()).as_ref().and_then(artifact::decode_cmp)
                {
                    self.resumed.fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = &self.telemetry {
                        tel.record_run(
                            &event_label,
                            &digest.hex(),
                            cmp_run_fields(&run),
                            &TelemetrySink::disabled(),
                        );
                    }
                    outcome = Some(Outcome::Resumed);
                    return run;
                }
            }
            let opts = RunOptions {
                mode: self.warmup,
                checkpoints: self.checkpoints.as_deref(),
                wall: self.telemetry.as_deref(),
            };
            let run = match &self.telemetry {
                Some(tel) => {
                    let sink = tel.run_sink();
                    let run = crate::cmp::run_cmp_opts(
                        key,
                        cores,
                        &kind,
                        self.scale,
                        &sink,
                        tel.snap_cycles(),
                        opts,
                        self.sample,
                    );
                    tel.record_run(&event_label, &digest.hex(), cmp_run_fields(&run), &sink);
                    run
                }
                None => crate::cmp::run_cmp_opts(
                    key,
                    cores,
                    &kind,
                    self.scale,
                    &TelemetrySink::disabled(),
                    0,
                    opts,
                    self.sample,
                ),
            };
            self.simulated.fetch_add(1, Ordering::Relaxed);
            if let Some(store) = &self.artifacts {
                let _ = store.append(&digest.hex(), artifact::encode_cmp(&run));
            }
            outcome = Some(Outcome::Simulated);
            run
        });

        self.emit(
            &event_label,
            EventKind::Finished {
                outcome: outcome.unwrap_or(Outcome::Shared),
                wall_ns: t0.elapsed().as_nanos() as u64,
            },
        );
        run
    }

    /// Executes the given (cores, configuration-key) CMP jobs on the
    /// sweep's worker pool, populating the CMP run store.
    pub fn prefetch_cmp(&self, jobs: &[(u32, &'static str)]) {
        for &(cores, key) in jobs {
            self.emit(&format!("cmp{cores}x/{key}"), EventKind::Queued);
        }
        let thunks: Vec<_> = jobs
            .iter()
            .map(|&(cores, key)| move || drop(self.run_cmp(cores, key)))
            .collect();
        pool::run_jobs(self.threads, thunks);
    }

    /// Runs (or returns the stored run of) the `dram` resize-transient
    /// scenario for `app`: [`dram_kind`] (NuRAPID + L4 with the shrink-
    /// then-grow schedule) through [`run_app_transient`] with
    /// [`DRAM_WINDOWS`] windows. Transient runs live in their own
    /// digest-keyed single-flight store with the same artifact-resume
    /// and checkpoint behavior as [`Sweep::run`].
    pub fn run_dram(&self, app: BenchProfile) -> Arc<DramRun> {
        let kind = dram_kind(self.scale);
        let digest = dram_digest(&app, &kind, self.scale, DRAM_WINDOWS);
        let event_label = format!("dram/{}", app.name);
        self.emit(&event_label, EventKind::Started);
        let t0 = Instant::now();

        let mut outcome = None;
        let run = self.dram_store.get_or_compute(digest.raw(), || {
            if let Some(store) = &self.artifacts {
                if let Some(run) =
                    store.lookup(&digest.hex()).as_ref().and_then(artifact::decode_dram)
                {
                    self.resumed.fetch_add(1, Ordering::Relaxed);
                    outcome = Some(Outcome::Resumed);
                    return run;
                }
            }
            let opts = RunOptions {
                mode: self.warmup,
                checkpoints: self.checkpoints.as_deref(),
                wall: self.telemetry.as_deref(),
            };
            let (run, windows) = run_app_transient(app, &kind, self.scale, DRAM_WINDOWS, opts);
            let run = DramRun { run, windows };
            self.simulated.fetch_add(1, Ordering::Relaxed);
            if let Some(store) = &self.artifacts {
                let _ = store.append(&digest.hex(), artifact::encode_dram(&run));
            }
            outcome = Some(Outcome::Simulated);
            run
        });

        self.emit(
            &event_label,
            EventKind::Finished {
                outcome: outcome.unwrap_or(Outcome::Shared),
                wall_ns: t0.elapsed().as_nanos() as u64,
            },
        );
        run
    }

    /// Executes the `dram` transient scenario for every application in
    /// the sweep on the worker pool (called by [`dram`] itself, like the
    /// CMP table prefetches its own jobs).
    pub fn prefetch_dram(&self) {
        for app in &self.apps {
            self.emit(&format!("dram/{}", app.name), EventKind::Queued);
        }
        let jobs: Vec<_> =
            self.apps.iter().map(|&app| move || drop(self.run_dram(app))).collect();
        pool::run_jobs(self.threads, jobs);
    }

    /// Runs (or returns the stored run of) `app` on the configuration
    /// named `key` under an **explicit** sampling regime, keeping the
    /// full per-window observation list — the sampled leg of the error
    /// study, which needs the windows for confidence intervals. Lives in
    /// its own digest-keyed single-flight store (under a study-specific
    /// domain tag, so its `"sampled_app"` artifacts can never collide
    /// with the plain estimates of [`Sweep::with_sample`] runs) with the
    /// same artifact-resume behavior as every other family.
    pub fn run_sampled(
        &self,
        app: BenchProfile,
        key: &'static str,
        spec: SampleSpec,
    ) -> Arc<SampledRun> {
        let kind = self.wrap_l4(kind_of(key));
        let digest = sampled_study_digest(&app, &kind, self.scale, spec, self.intervals);
        let event_label = format!("sampled-{key}/{}", app.name);
        self.emit(&event_label, EventKind::Started);
        let t0 = Instant::now();

        let mut outcome = None;
        let run = self.sampled_store.get_or_compute(digest.raw(), || {
            if let Some(store) = &self.artifacts {
                if let Some(run) =
                    store.lookup(&digest.hex()).as_ref().and_then(artifact::decode_sampled)
                {
                    self.resumed.fetch_add(1, Ordering::Relaxed);
                    outcome = Some(Outcome::Resumed);
                    return run;
                }
            }
            let opts = RunOptions {
                mode: self.warmup,
                checkpoints: self.checkpoints.as_deref(),
                wall: self.telemetry.as_deref(),
            };
            let run = sampling::run_app_sampled(
                app,
                &kind,
                self.scale,
                spec,
                self.intervals,
                self.threads,
                opts,
            );
            self.simulated.fetch_add(1, Ordering::Relaxed);
            if let Some(store) = &self.artifacts {
                let _ = store.append(&digest.hex(), artifact::encode_sampled(&run));
            }
            outcome = Some(Outcome::Simulated);
            run
        });

        self.emit(
            &event_label,
            EventKind::Finished {
                outcome: outcome.unwrap_or(Outcome::Shared),
                wall_ns: t0.elapsed().as_nanos() as u64,
            },
        );
        run
    }

    /// Executes the given (application, configuration-key) jobs on the
    /// sweep's worker pool, populating the run store. Figure functions
    /// called afterwards hit the warm store. Duplicate pairs — and pairs
    /// racing with figures on other threads — are deduplicated by the
    /// store's single-flight guarantee.
    pub fn prefetch(&self, pairs: &[(BenchProfile, &'static str)]) {
        for (app, key) in pairs {
            self.emit(&format!("{key}/{}", app.name), EventKind::Queued);
        }
        let jobs: Vec<_> = pairs
            .iter()
            .map(|&(app, key)| move || drop(self.run(app, key)))
            .collect();
        pool::run_jobs(self.threads, jobs);
    }

    /// Prefetches every application in the sweep on each of `keys`.
    pub fn prefetch_all(&self, keys: &[&'static str]) {
        let pairs: Vec<_> = keys
            .iter()
            .flat_map(|&k| self.apps.iter().map(move |&a| (a, k)))
            .collect();
        self.prefetch(&pairs);
    }

    /// Number of distinct completed runs across all stores (single-core,
    /// CMP, and DRAM transient; simulated plus resumed from artifacts).
    pub fn runs(&self) -> usize {
        self.store.completed()
            + self.cmp_store.completed()
            + self.dram_store.completed()
            + self.sampled_store.completed()
    }

    /// Number of runs actually simulated by this sweep.
    pub fn simulated(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Number of runs loaded from digest-matching artifacts.
    pub fn resumed(&self) -> u64 {
        self.resumed.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sweep")
            .field("scale", &self.scale)
            .field("apps", &self.apps.len())
            .field("threads", &self.threads)
            .field("runs", &self.runs())
            .field("artifacts", &self.artifacts.as_ref().map(|a| a.dir().to_path_buf()))
            .finish()
    }
}

/// The summary fields exported to `metrics.json` for one run. The f64
/// values are the very numbers the printed tables derive from; the JSON
/// renderer writes them shortest-round-trip, so they re-parse bit-exact.
fn run_fields(run: &AppRun) -> Vec<(&'static str, Value)> {
    vec![
        ("app", Value::Str(run.name.to_string())),
        ("instructions", Value::U64(run.core.instructions)),
        ("cycles", Value::U64(run.core.cycles)),
        ("ipc", Value::F64(run.ipc())),
        ("apki", Value::F64(run.apki())),
        ("l2_accesses", Value::U64(run.l2_accesses)),
        ("l2_misses", Value::U64(run.l2_misses)),
        ("miss_frac", Value::F64(run.miss_frac)),
        ("group_fracs", Value::F64s(run.group_fracs.clone())),
        ("dgroup_accesses", Value::U64(run.dgroup_accesses)),
        ("swaps", Value::U64(run.swaps)),
        ("l2_energy_nj", Value::F64(run.l2_energy.nj())),
        ("total_energy_nj", Value::F64(run.energy.total().nj())),
        ("edp", Value::F64(run.edp())),
    ]
}

/// The summary fields exported to `metrics.json` for one CMP run.
fn cmp_run_fields(run: &CmpRun) -> Vec<(&'static str, Value)> {
    vec![
        ("config", Value::Str(run.key.to_string())),
        ("cores", Value::U64(u64::from(run.cores))),
        ("mean_ipc", Value::F64(run.mean_ipc())),
        ("fairness", Value::F64(run.fairness())),
        ("l2_accesses", Value::U64(run.result.report.l2_accesses)),
        ("l2_misses", Value::U64(run.result.report.l2_misses)),
        ("miss_frac", Value::F64(run.result.report.miss_frac)),
        ("group_fracs", Value::F64s(run.result.report.group_fracs.clone())),
        ("bank_conflicts", Value::U64(run.result.bank_conflicts)),
        ("bank_stall_cycles", Value::U64(run.result.bank_stall_cycles)),
        ("invalidations", Value::U64(run.result.invalidations.iter().sum())),
    ]
}

/// Resolves a configuration key to its organization.
///
/// # Panics
///
/// Panics on an unknown key.
pub fn kind_of(key: &str) -> L2Kind {
    match key {
        "base" => L2Kind::Base,
        "nf2" => L2Kind::NuRapid(NuRapidConfig::micro2003(2)),
        "nf4" => L2Kind::NuRapid(NuRapidConfig::micro2003(4)),
        "nf8" => L2Kind::NuRapid(NuRapidConfig::micro2003(8)),
        "dm4" => L2Kind::NuRapid(
            NuRapidConfig::micro2003(4).with_promotion(PromotionPolicy::DemotionOnly),
        ),
        "fs4" => {
            L2Kind::NuRapid(NuRapidConfig::micro2003(4).with_promotion(PromotionPolicy::Fastest))
        }
        "id4" => L2Kind::NuRapid(NuRapidConfig::micro2003(4).with_ideal()),
        "lru-dm" => L2Kind::NuRapid(
            NuRapidConfig::micro2003(4)
                .with_promotion(PromotionPolicy::DemotionOnly)
                .with_distance_victim(DistanceVictimPolicy::Lru),
        ),
        "lru-nf" => L2Kind::NuRapid(
            NuRapidConfig::micro2003(4).with_distance_victim(DistanceVictimPolicy::Lru),
        ),
        "clock-dm" => L2Kind::NuRapid(
            NuRapidConfig::micro2003(4)
                .with_promotion(PromotionPolicy::DemotionOnly)
                .with_distance_victim(DistanceVictimPolicy::ClockApprox),
        ),
        "clock-nf" => L2Kind::NuRapid(
            NuRapidConfig::micro2003(4)
                .with_distance_victim(DistanceVictimPolicy::ClockApprox),
        ),
        "sa4" => L2Kind::Coupled(4),
        "nf4-r256" => L2Kind::NuRapid(NuRapidConfig::micro2003(4).with_frames_per_region(256)),
        "nf4-r64" => L2Kind::NuRapid(NuRapidConfig::micro2003(4).with_frames_per_region(64)),
        "dn-perf" => L2Kind::Dnuca(SearchPolicy::SsPerformance),
        "dn-energy" => L2Kind::Dnuca(SearchPolicy::SsEnergy),
        "dn-memo" => L2Kind::Dnuca(SearchPolicy::WayMemo),
        "cnuca" => L2Kind::Cnuca(CnucaConfig::micro2003()),
        other => panic!("unknown configuration key {other:?}"),
    }
}

/// Geometric mean of `values`.
fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut g = GeoMean::new();
    for v in values {
        g.add(v);
    }
    g.get()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// Table 2: per-operation cache energies in nJ, straight from the
/// analytical model.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `(operation description, energy in nJ)` rows.
    pub rows: Vec<(String, f64)>,
}

/// Regenerates Table 2.
pub fn table2() -> Table2 {
    let cap = Capacity::from_mib(8);
    let g4 = NuRapidGeometry::micro2003(cap, 4);
    let g8 = NuRapidGeometry::micro2003(cap, 8);
    let dn = DnucaGeometry::micro2003(cap);
    let nj = |g: &NuRapidGeometry, d: usize| (g.tag_energy() + g.dgroup_access_energy(d)).nj();
    let far_bank = dn.n_banks() - 1;
    Table2 {
        rows: vec![
            ("Tag + access: closest of 4, 2-MB d-groups".into(), nj(&g4, 0)),
            ("Tag + access: farthest of 4, 2-MB d-groups".into(), nj(&g4, 3)),
            ("Tag + access: closest of 8, 1-MB d-groups".into(), nj(&g8, 0)),
            ("Tag + access: farthest of 8, 1-MB d-groups".into(), nj(&g8, 7)),
            (
                "Tag + access: closest 64-KB NUCA d-group".into(),
                dn.bank_access_energy(0).nj(),
            ),
            (
                "Tag + access: farthest 64-KB NUCA d-group (incl routing)".into(),
                dn.bank_access_energy(far_bank).nj(),
            ),
            (
                "Access 7-bit-per-entry, 16-way NUCA sm-search array".into(),
                catalog::smart_search_energy().nj(),
            ),
            (
                "Tag + access: 2 ports of low-latency 64-KB 2-way L1 cache".into(),
                catalog::l1_two_port_energy().nj(),
            ),
        ],
    }
}

impl Table2 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Operation", "Energy (nJ)"]);
        for (op, e) in &self.rows {
            t.row(vec![op.clone(), f2(*e)]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// Table 3: base-case characterization of the roster.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// `(name, class, ipc, apki)` per application.
    pub rows: Vec<(&'static str, LoadClass, f64, f64)>,
}

/// Regenerates Table 3 on the base hierarchy.
pub fn table3(sweep: &Sweep) -> Table3 {
    let apps = sweep.apps().to_vec();
    let rows = apps
        .into_iter()
        .map(|p| {
            let r = sweep.run(p, "base");
            (p.name, p.class, r.ipc(), r.apki())
        })
        .collect();
    Table3 { rows }
}

impl Table3 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["Benchmark", "Class", "IPC", "L2 accesses / 1K inst"]);
        for &(name, class, ipc, apki) in &self.rows {
            let c = match class {
                LoadClass::HighLoad => "high",
                LoadClass::LowLoad => "low",
            };
            t.row(vec![name.to_string(), c.into(), f2(ipc), format!("{apki:.1}")]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

/// One Table 4 row: `(min, mean, max)` D-NUCA latency for a megabyte.
pub type DnucaMbLatency = (u64, f64, u64);

/// Table 4: per-megabyte access latencies of every organization.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// For each of the 8 MB (nearest first): latency in the 2/4/8-d-group
    /// NuRAPIDs and `(min, mean, max)` for D-NUCA.
    pub rows: Vec<(u64, u64, u64, DnucaMbLatency)>,
}

/// Regenerates Table 4 from the analytical model.
pub fn table4() -> Table4 {
    let cap = Capacity::from_mib(8);
    let g2 = NuRapidGeometry::micro2003(cap, 2);
    let g4 = NuRapidGeometry::micro2003(cap, 4);
    let g8 = NuRapidGeometry::micro2003(cap, 8);
    let dn = DnucaGeometry::micro2003(cap);
    Table4 {
        rows: (0..8)
            .map(|mb| {
                (
                    g2.latency_of_mb(mb),
                    g4.latency_of_mb(mb),
                    g8.latency_of_mb(mb),
                    dn.latency_of_mb(mb),
                )
            })
            .collect(),
    }
}

impl Table4 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Capacity",
            "2 d-groups",
            "4 d-groups",
            "8 d-groups",
            "D-NUCA (range, avg)",
        ]);
        for (mb, &(l2, l4, l8, (dmin, davg, dmax))) in self.rows.iter().enumerate() {
            t.row(vec![
                format!("MB {}", mb + 1),
                l2.to_string(),
                l4.to_string(),
                l8.to_string(),
                format!("{dmin}-{dmax} ({davg:.0})"),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------------
// Distribution figures (4, 5, 7) share one shape
// ---------------------------------------------------------------------------

/// Per-configuration access distribution: `(group_fracs, miss_frac)`.
pub type Distribution = (Vec<f64>, f64);

/// A d-group access distribution comparison across configurations: for
/// each application and configuration, the per-group access fractions and
/// the miss fraction.
#[derive(Debug, Clone)]
pub struct DistFigure {
    /// Figure label.
    pub title: &'static str,
    /// Configuration keys, in display order.
    pub configs: Vec<&'static str>,
    /// `rows[app][config] = (group_fracs, miss_frac)`.
    pub rows: Vec<(&'static str, Vec<Distribution>)>,
}

fn dist_figure(sweep: &Sweep, title: &'static str, configs: Vec<&'static str>) -> DistFigure {
    let apps = sweep.apps().to_vec();
    let rows = apps
        .into_iter()
        .map(|p| {
            let per_config = configs
                .iter()
                .map(|k| {
                    let r = sweep.run(p, k);
                    (r.group_fracs.clone(), r.miss_frac)
                })
                .collect();
            (p.name, per_config)
        })
        .collect();
    DistFigure {
        title,
        configs,
        rows,
    }
}

impl DistFigure {
    /// Average fraction of accesses to the fastest d-group for config `i`.
    pub fn avg_first_group(&self, i: usize) -> f64 {
        let sum: f64 = self.rows.iter().map(|(_, c)| c[i].0[0]).sum();
        sum / self.rows.len() as f64
    }

    /// Average fraction of accesses to the slowest two d-groups for
    /// config `i` (Figure 4's "last 2 d-groups" comparison).
    pub fn avg_last_two_groups(&self, i: usize) -> f64 {
        let sum: f64 = self
            .rows
            .iter()
            .map(|(_, c)| {
                let g = &c[i].0;
                g[g.len().saturating_sub(2)..].iter().sum::<f64>()
            })
            .sum();
        sum / self.rows.len() as f64
    }

    /// Average miss fraction for config `i`.
    pub fn avg_miss(&self, i: usize) -> f64 {
        let sum: f64 = self.rows.iter().map(|(_, c)| c[i].1).sum();
        sum / self.rows.len() as f64
    }

    /// Renders the figure as a table of `group0/group1/... (miss)` cells.
    pub fn render(&self) -> String {
        let mut header = vec!["App".to_string()];
        header.extend(self.configs.iter().map(|c| c.to_string()));
        let mut t = TextTable::new(header);
        let fmt = |fracs: &Distribution| {
            let groups: Vec<String> = fracs.0.iter().map(|f| format!("{:.0}", f * 100.0)).collect();
            format!("{} m{:.0}", groups.join("/"), fracs.1 * 100.0)
        };
        for (name, per_config) in &self.rows {
            let mut row = vec![name.to_string()];
            row.extend(per_config.iter().map(fmt));
            t.row(row);
        }
        let mut avg = vec!["AVERAGE".to_string()];
        for i in 0..self.configs.len() {
            avg.push(format!(
                "g0 {} miss {}",
                pct(self.avg_first_group(i)),
                pct(self.avg_miss(i))
            ));
        }
        t.row(avg);
        format!("{}\n{}", self.title, t.render())
    }
}

impl DistFigure {
    /// Renders the figure as tab-separated values for plotting: one row
    /// per application, `config:group` columns plus `config:miss`.
    pub fn render_tsv(&self) -> String {
        let mut out = String::from("app");
        for (i, c) in self.configs.iter().enumerate() {
            let n = self.rows[0].1[i].0.len();
            for g in 0..n {
                out.push_str(&format!("\t{c}:g{g}"));
            }
            out.push_str(&format!("\t{c}:miss"));
        }
        out.push('\n');
        for (name, per_config) in &self.rows {
            out.push_str(name);
            for (fracs, miss) in per_config {
                for f in fracs {
                    out.push_str(&format!("\t{f:.4}"));
                }
                out.push_str(&format!("\t{miss:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Figure 4: set-associative vs distance-associative placement.
pub fn fig4(sweep: &Sweep) -> DistFigure {
    dist_figure(
        sweep,
        "Figure 4: distribution of d-group accesses, set-associative (sa4) \
         vs distance-associative (nf4) placement",
        vec!["sa4", "nf4"],
    )
}

/// Figure 5: demotion-only vs next-fastest vs fastest promotion.
pub fn fig5(sweep: &Sweep) -> DistFigure {
    dist_figure(
        sweep,
        "Figure 5: distribution of d-group accesses for NuRAPID promotion \
         policies (demotion-only / next-fastest / fastest)",
        vec!["dm4", "nf4", "fs4"],
    )
}

/// Figure 7: 2 vs 4 vs 8 d-groups.
pub fn fig7(sweep: &Sweep) -> DistFigure {
    dist_figure(
        sweep,
        "Figure 7: distribution of d-group accesses for 2-, 4-, and \
         8-d-group NuRAPIDs",
        vec!["nf2", "nf4", "nf8"],
    )
}

// ---------------------------------------------------------------------------
// Performance figures (6, 8, 9) share one shape
// ---------------------------------------------------------------------------

/// Relative performance of several configurations against the base case.
#[derive(Debug, Clone)]
pub struct PerfFigure {
    /// Figure label.
    pub title: &'static str,
    /// Configuration keys, in display order.
    pub configs: Vec<&'static str>,
    /// `rows[app] = (name, class, [ipc_config / ipc_base])`.
    pub rows: Vec<(&'static str, LoadClass, Vec<f64>)>,
}

fn perf_figure(sweep: &Sweep, title: &'static str, configs: Vec<&'static str>) -> PerfFigure {
    let apps = sweep.apps().to_vec();
    let rows = apps
        .into_iter()
        .map(|p| {
            let base_ipc = sweep.run(p, "base").ipc();
            let rels = configs
                .iter()
                .map(|k| sweep.run(p, k).ipc() / base_ipc)
                .collect();
            (p.name, p.class, rels)
        })
        .collect();
    PerfFigure {
        title,
        configs,
        rows,
    }
}

impl PerfFigure {
    /// Geometric-mean relative performance of config `i` over all apps.
    pub fn overall(&self, i: usize) -> f64 {
        geomean(self.rows.iter().map(|(_, _, r)| r[i]))
    }

    /// Geometric mean over one load class.
    pub fn class_mean(&self, i: usize, class: LoadClass) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|(_, c, _)| *c == class)
            .map(|(_, _, r)| r[i])
            .collect();
        if vals.is_empty() {
            1.0
        } else {
            geomean(vals)
        }
    }

    /// Best per-app relative performance of config `i`.
    pub fn max(&self, i: usize) -> f64 {
        self.rows
            .iter()
            .map(|(_, _, r)| r[i])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut header = vec!["App".to_string()];
        header.extend(self.configs.iter().map(|c| c.to_string()));
        let mut t = TextTable::new(header);
        for (name, _, rels) in &self.rows {
            let mut row = vec![name.to_string()];
            row.extend(rels.iter().map(|r| rel(*r)));
            t.row(row);
        }
        for (label, class) in [("HIGH-LOAD", LoadClass::HighLoad), ("LOW-LOAD", LoadClass::LowLoad)]
        {
            let mut row = vec![label.to_string()];
            row.extend((0..self.configs.len()).map(|i| rel(self.class_mean(i, class))));
            t.row(row);
        }
        let mut row = vec!["OVERALL".to_string()];
        row.extend((0..self.configs.len()).map(|i| rel(self.overall(i))));
        t.row(row);
        format!("{}\n{}", self.title, t.render())
    }
}

impl PerfFigure {
    /// Renders the figure as tab-separated values for plotting.
    pub fn render_tsv(&self) -> String {
        let mut out = String::from("app");
        for c in &self.configs {
            out.push_str(&format!("\t{c}"));
        }
        out.push('\n');
        for (name, _, rels) in &self.rows {
            out.push_str(name);
            for r in rels {
                out.push_str(&format!("\t{r:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Figure 6: performance of the NuRAPID policies and the ideal case,
/// relative to the base L2/L3 hierarchy.
pub fn fig6(sweep: &Sweep) -> PerfFigure {
    perf_figure(
        sweep,
        "Figure 6: performance of NuRAPID policies relative to the base \
         L2/L3 hierarchy (demotion-only / next-fastest / fastest / ideal)",
        vec!["dm4", "nf4", "fs4", "id4"],
    )
}

/// Figure 8: performance of 2-, 4-, and 8-d-group NuRAPIDs.
pub fn fig8(sweep: &Sweep) -> PerfFigure {
    perf_figure(
        sweep,
        "Figure 8: performance of 2-, 4-, and 8-d-group NuRAPIDs relative \
         to the base L2/L3 hierarchy",
        vec!["nf2", "nf4", "nf8"],
    )
}

/// Figure 9: NuRAPID vs D-NUCA (ss-performance).
pub fn fig9(sweep: &Sweep) -> PerfFigure {
    perf_figure(
        sweep,
        "Figure 9: D-NUCA (ss-performance) and 4-/8-d-group NuRAPIDs \
         relative to the base L2/L3 hierarchy",
        vec!["dn-perf", "nf4", "nf8"],
    )
}

// ---------------------------------------------------------------------------
// Section 5.3.1: random vs true-LRU distance replacement
// ---------------------------------------------------------------------------

/// §5.3.1: average fastest-d-group access fraction for random vs
/// approximate-LRU (CLOCK) vs true-LRU distance replacement under the
/// demotion-only and next-fastest policies.
#[derive(Debug, Clone)]
pub struct LruStudy {
    /// `(policy, random frac, clock frac, lru frac)` rows.
    pub rows: Vec<(&'static str, f64, f64, f64)>,
}

/// Regenerates the §5.3.1 comparison (extended with the approximate-LRU
/// middle ground the paper mentions but does not measure).
pub fn sec531(sweep: &Sweep) -> LruStudy {
    let apps = sweep.apps().to_vec();
    let avg_g0 = |sweep: &Sweep, key: &'static str| {
        let sum: f64 = apps
            .iter()
            .map(|&p| sweep.run(p, key).group_fracs[0])
            .sum();
        sum / apps.len() as f64
    };
    LruStudy {
        rows: vec![
            (
                "demotion-only",
                avg_g0(sweep, "dm4"),
                avg_g0(sweep, "clock-dm"),
                avg_g0(sweep, "lru-dm"),
            ),
            (
                "next-fastest",
                avg_g0(sweep, "nf4"),
                avg_g0(sweep, "clock-nf"),
                avg_g0(sweep, "lru-nf"),
            ),
        ],
    }
}

impl LruStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Promotion policy",
            "Random: d-group-0 accesses",
            "Approx-LRU (clock): d-group-0 accesses",
            "True-LRU: d-group-0 accesses",
        ]);
        for &(policy, random, clock, lru) in &self.rows {
            t.row(vec![policy.to_string(), pct(random), pct(clock), pct(lru)]);
        }
        format!(
            "Section 5.3.1: random vs approximate-LRU vs true-LRU distance replacement\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 10 (reconstructed): L2 dynamic energy
// ---------------------------------------------------------------------------

/// Figure 10: L2 dynamic energy per kilo-instruction for the base
/// hierarchy, D-NUCA (ss-energy), and NuRAPID, plus the d-group-access
/// comparison behind the paper's "61% fewer d-group accesses" claim.
#[derive(Debug, Clone)]
pub struct EnergyFigure {
    /// `(name, base nJ/KI, dnuca nJ/KI, nurapid nJ/KI, dnuca d-group
    /// accesses per demand access, nurapid d-group accesses per demand
    /// access)`.
    pub rows: Vec<(&'static str, f64, f64, f64, f64, f64)>,
}

/// Regenerates the energy comparison.
pub fn fig10(sweep: &Sweep) -> EnergyFigure {
    let apps = sweep.apps().to_vec();
    let rows = apps
        .into_iter()
        .map(|p| {
            let per_ki = |r: &AppRun| r.l2_energy.nj() * 1000.0 / r.core.instructions as f64;
            let per_access =
                |r: &AppRun| r.dgroup_accesses as f64 / r.l2_accesses.max(1) as f64;
            let base = per_ki(&sweep.run(p, "base"));
            let dn = sweep.run(p, "dn-energy");
            let (dn_e, dn_a) = (per_ki(&dn), per_access(&dn));
            let nr = sweep.run(p, "nf4");
            let (nr_e, nr_a) = (per_ki(&nr), per_access(&nr));
            (p.name, base, dn_e, nr_e, dn_a, nr_a)
        })
        .collect();
    EnergyFigure { rows }
}

impl EnergyFigure {
    /// NuRAPID's average L2-energy reduction relative to D-NUCA
    /// (the paper reports 77%).
    pub fn energy_reduction_vs_dnuca(&self) -> f64 {
        let dn: f64 = self.rows.iter().map(|r| r.2).sum();
        let nr: f64 = self.rows.iter().map(|r| r.3).sum();
        1.0 - nr / dn
    }

    /// NuRAPID's average reduction in d-group accesses relative to D-NUCA
    /// (the paper reports 61%).
    pub fn access_reduction_vs_dnuca(&self) -> f64 {
        let dn: f64 = self.rows.iter().map(|r| r.4).sum();
        let nr: f64 = self.rows.iter().map(|r| r.5).sum();
        1.0 - nr / dn
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "App",
            "base nJ/KI",
            "D-NUCA(ss-e) nJ/KI",
            "NuRAPID nJ/KI",
            "D-NUCA dgrp-acc/acc",
            "NuRAPID dgrp-acc/acc",
        ]);
        for &(name, b, d, n, da, na) in &self.rows {
            t.row(vec![
                name.to_string(),
                f2(b),
                f2(d),
                f2(n),
                f2(da),
                f2(na),
            ]);
        }
        format!(
            "Figure 10 (reconstructed): L2 dynamic energy\n{}\
             NuRAPID L2 energy reduction vs D-NUCA: {}\n\
             NuRAPID d-group access reduction vs D-NUCA: {}\n",
            t.render(),
            pct(self.energy_reduction_vs_dnuca()),
            pct(self.access_reduction_vs_dnuca()),
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 11 (reconstructed): processor energy-delay
// ---------------------------------------------------------------------------

/// Figure 11: processor energy-delay relative to the base hierarchy.
#[derive(Debug, Clone)]
pub struct EdpFigure {
    /// `(name, dnuca-best EDP / base EDP, nurapid EDP / base EDP)`.
    pub rows: Vec<(&'static str, f64, f64)>,
}

/// Regenerates the energy-delay comparison. D-NUCA gets its best foot
/// forward: the lower energy-delay of its two policies per application.
pub fn fig11(sweep: &Sweep) -> EdpFigure {
    let apps = sweep.apps().to_vec();
    let rows = apps
        .into_iter()
        .map(|p| {
            let base = sweep.run(p, "base").edp();
            let dn = sweep
                .run(p, "dn-perf")
                .edp()
                .min(sweep.run(p, "dn-energy").edp());
            let nr = sweep.run(p, "nf4").edp();
            (p.name, dn / base, nr / base)
        })
        .collect();
    EdpFigure { rows }
}

impl EdpFigure {
    /// Geometric-mean relative EDP of NuRAPID (the paper reports ~0.93,
    /// i.e. a 7% reduction).
    pub fn nurapid_mean(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.2))
    }

    /// Geometric-mean relative EDP of D-NUCA.
    pub fn dnuca_mean(&self) -> f64 {
        geomean(self.rows.iter().map(|r| r.1))
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["App", "D-NUCA (best) EDP", "NuRAPID EDP"]);
        for &(name, dn, nr) in &self.rows {
            t.row(vec![name.to_string(), rel(dn), rel(nr)]);
        }
        t.row(vec![
            "GEOMEAN".to_string(),
            rel(self.dnuca_mean()),
            rel(self.nurapid_mean()),
        ]);
        format!(
            "Figure 11 (reconstructed): processor energy-delay relative to base\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------------
// Section 2.4.3 ablation: pointer restriction
// ---------------------------------------------------------------------------

/// Pointer-restriction ablation (DESIGN.md §5.6): placement flexibility vs
/// pointer width. Compares the fully flexible NuRAPID against versions
/// restricted to 256 and 64 candidate frames per d-group.
#[derive(Debug, Clone)]
pub struct RestrictionAblation {
    /// `(label, forward-pointer bits, avg d-group-0 fraction, geometric-
    /// mean relative performance vs base)`.
    pub rows: Vec<(&'static str, u32, f64, f64)>,
}

/// Regenerates the pointer-restriction ablation.
pub fn restriction_ablation(sweep: &Sweep) -> RestrictionAblation {
    use nurapid::pointers::PointerScheme;
    let cap = Capacity::from_mib(8);
    let apps = sweep.apps().to_vec();
    let mut rows = Vec::new();
    for (label, key, scheme) in [
        (
            "flexible",
            "nf4",
            PointerScheme::flexible(cap, 128, 4),
        ),
        (
            "256 frames/region",
            "nf4-r256",
            PointerScheme::restricted(cap, 128, 4, 256),
        ),
        (
            "64 frames/region",
            "nf4-r64",
            PointerScheme::restricted(cap, 128, 4, 64),
        ),
    ] {
        let mut g0 = 0.0;
        let mut rel_perf = Vec::new();
        for &p in &apps {
            let base_ipc = sweep.run(p, "base").ipc();
            let r = sweep.run(p, key);
            g0 += r.group_fracs[0];
            rel_perf.push(r.ipc() / base_ipc);
        }
        rows.push((
            label,
            scheme.forward_pointer_bits(),
            g0 / apps.len() as f64,
            geomean(rel_perf),
        ));
    }
    RestrictionAblation { rows }
}

impl RestrictionAblation {
    /// Renders the ablation.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Placement",
            "Fwd-pointer bits",
            "d-group-0 accesses",
            "Rel. performance",
        ]);
        for &(label, bits, g0, perf) in &self.rows {
            t.row(vec![label.to_string(), bits.to_string(), pct(g0), rel(perf)]);
        }
        format!(
            "Section 2.4.3 ablation: pointer restriction vs placement flexibility
{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------------
// Organization plugin study: the trait's two new organizations vs D-NUCA
// ---------------------------------------------------------------------------

/// Organization comparison across the plugin roster: D-NUCA's three
/// search policies and compressed NUCA, per application. The two claims
/// it substantiates (DESIGN.md §12):
///
/// * **compressed NUCA** puts a larger fraction of accesses in the
///   fastest d-group than D-NUCA — its position 0 holds four compressed
///   blocks where D-NUCA holds two raw ones;
/// * **way memoization** spends less L2 energy than multicast smart
///   search — memo hits skip the smart-search array and every non-hit
///   bank.
#[derive(Debug, Clone)]
pub struct OrgFigure {
    /// Configuration keys, in display order.
    pub configs: Vec<&'static str>,
    /// `rows[app] = (name, [(rel ipc, l2 nJ/KI, fastest-group frac)])`.
    pub rows: Vec<(&'static str, Vec<(f64, f64, f64)>)>,
}

/// Regenerates the organization comparison.
pub fn orgs(sweep: &Sweep) -> OrgFigure {
    let configs = vec!["dn-perf", "dn-energy", "dn-memo", "cnuca"];
    let apps = sweep.apps().to_vec();
    let rows = apps
        .into_iter()
        .map(|p| {
            let base_ipc = sweep.run(p, "base").ipc();
            let per_config = configs
                .iter()
                .map(|k| {
                    let r = sweep.run(p, k);
                    let per_ki = r.l2_energy.nj() * 1000.0 / r.core.instructions as f64;
                    let g0 = r.group_fracs.first().copied().unwrap_or(0.0);
                    (r.ipc() / base_ipc, per_ki, g0)
                })
                .collect();
            (p.name, per_config)
        })
        .collect();
    OrgFigure { configs, rows }
}

impl OrgFigure {
    fn avg(&self, i: usize, field: impl Fn(&(f64, f64, f64)) -> f64) -> f64 {
        let sum: f64 = self.rows.iter().map(|(_, c)| field(&c[i])).sum();
        sum / self.rows.len() as f64
    }

    /// Average fastest-d-group access fraction of config `i`.
    pub fn avg_first_group(&self, i: usize) -> f64 {
        self.avg(i, |r| r.2)
    }

    /// Average L2 nJ per kilo-instruction of config `i`.
    pub fn avg_energy_per_ki(&self, i: usize) -> f64 {
        self.avg(i, |r| r.1)
    }

    /// Geometric-mean relative performance of config `i`.
    pub fn overall(&self, i: usize) -> f64 {
        geomean(self.rows.iter().map(|(_, c)| c[i].0))
    }

    /// Renders the study.
    pub fn render(&self) -> String {
        let mut header = vec!["App".to_string()];
        for c in &self.configs {
            header.push(format!("{c} perf"));
            header.push(format!("{c} nJ/KI"));
            header.push(format!("{c} g0"));
        }
        let mut t = TextTable::new(header);
        for (name, per_config) in &self.rows {
            let mut row = vec![name.to_string()];
            for &(perf, e, g0) in per_config {
                row.push(rel(perf));
                row.push(f2(e));
                row.push(pct(g0));
            }
            t.row(row);
        }
        let mut avg = vec!["AVERAGE".to_string()];
        for i in 0..self.configs.len() {
            avg.push(rel(self.overall(i)));
            avg.push(f2(self.avg_energy_per_ki(i)));
            avg.push(pct(self.avg_first_group(i)));
        }
        t.row(avg);
        format!(
            "Organization plugins: D-NUCA search policies vs compressed NUCA\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------------
// DRAM-cache resize transients (DESIGN.md §15)
// ---------------------------------------------------------------------------

/// Number of equal measurement windows in the `dram` transient study.
/// Eight divides the resize op-indices exactly: the shrink lands on the
/// boundary between windows 2 and 3, the grow between windows 5 and 6,
/// so each transient is isolated in the first window of its regime.
pub const DRAM_WINDOWS: usize = 8;

/// First window of the shrunk (4-bank) regime.
pub const DRAM_SHRINK_WINDOW: usize = 3;

/// First window of the grown (12-bank) regime.
pub const DRAM_GROW_WINDOW: usize = 6;

/// The `dram` scenario configuration: a capacity-constrained NuRAPID
/// L2 backed by a TDRAM-style L4 that shrinks from 8 to 4 banks
/// three-eighths of the way through measurement, then grows to 12
/// banks at the six-eighths mark. Both resize op-indices fall on
/// [`DRAM_WINDOWS`] window boundaries by construction.
///
/// The L2 is 2 MB here, not the paper's 8 MB: the SPEC-2000 hot
/// footprints (0.5–5 MB) fit entirely inside an 8-MB L2, so its miss
/// stream is purely compulsory and a victim tier below it can never
/// hit, at any capacity. At 2 MB the larger hot sets overflow and the
/// folded hot-set layout conflicts, so the miss stream carries reuse —
/// which is what makes the L4's hit rate, its resize writebacks, and
/// the orphaned-block transient after each remap visible.
pub fn dram_kind(scale: Scale) -> L2Kind {
    let at = |w: usize| scale.measure * w as u64 / DRAM_WINDOWS as u64;
    let resizes = vec![(at(DRAM_SHRINK_WINDOW), 4), (at(DRAM_GROW_WINDOW), 12)];
    let mut inner = NuRapidConfig::micro2003(4);
    inner.capacity = Capacity::from_mib(2);
    L2Kind::L4(
        Box::new(L2Kind::NuRapid(inner)),
        L4Config::tdram().with_resizes(resizes),
    )
}

/// Digest keying a windowed transient run: the plain [`run_digest`]
/// (profile, configuration incl. resize schedule, scale, trace seed)
/// under a distinct domain tag, plus the window count — the same job
/// sliced into a different number of windows is a different artifact.
pub fn dram_digest(
    profile: &BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    n_windows: usize,
) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-dram-v1");
    let raw = run_digest(profile, kind, scale).raw();
    h.write_u64((raw >> 64) as u64);
    h.write_u64(raw as u64);
    h.write_u64(n_windows as u64);
    h.digest()
}

/// One application's `dram` transient run: the whole-measurement
/// [`AppRun`] plus its per-window slices.
#[derive(Debug, Clone, PartialEq)]
pub struct DramRun {
    /// The run's whole-measurement result (same shape as a keyed run).
    pub run: AppRun,
    /// [`DRAM_WINDOWS`] equal slices of the measured phase.
    pub windows: Vec<TransientWindow>,
}

/// The `dram` experiment: per-window IPC, L4 behavior, and memory
/// energy across the 8 → 4 → 12-bank resize schedule of [`dram_kind`].
#[derive(Debug, Clone)]
pub struct DramStudy {
    /// `(name, per-window transients)` rows.
    pub rows: Vec<(&'static str, Vec<TransientWindow>)>,
}

/// Regenerates the resize-transient study. Prefetches its own jobs on
/// the sweep's worker pool (like the CMP table), so figure callers get
/// `--threads` parallelism without a prewarm entry.
pub fn dram(sweep: &Sweep) -> DramStudy {
    sweep.prefetch_dram();
    let rows = sweep
        .apps()
        .iter()
        .map(|&p| (p.name, sweep.run_dram(p).windows.clone()))
        .collect();
    DramStudy { rows }
}

impl DramStudy {
    /// Geometric-mean IPC of window `w` across applications.
    pub fn avg_ipc(&self, w: usize) -> f64 {
        geomean(self.rows.iter().map(|(_, ws)| ws[w].ipc()))
    }

    /// Mean L4 hit rate of window `w` across applications.
    pub fn avg_hit_rate(&self, w: usize) -> f64 {
        let sum: f64 = self
            .rows
            .iter()
            .map(|(_, ws)| ws[w].l4.hits as f64 / ws[w].l4.accesses.max(1) as f64)
            .sum();
        sum / self.rows.len() as f64
    }

    /// Mean memory nJ per kilo-instruction of window `w`.
    pub fn avg_energy_per_ki(&self, w: usize) -> f64 {
        let sum: f64 = self
            .rows
            .iter()
            .map(|(_, ws)| ws[w].memory_energy.nj() * 1000.0 / ws[w].instructions as f64)
            .sum();
        sum / self.rows.len() as f64
    }

    /// IPC of the shrink-transient window relative to the steady window
    /// before it (< 1 when the shrink costs performance).
    pub fn shrink_dip(&self) -> f64 {
        self.avg_ipc(DRAM_SHRINK_WINDOW) / self.avg_ipc(DRAM_SHRINK_WINDOW - 1)
    }

    /// IPC of the grow-transient window relative to the steady window
    /// before it.
    pub fn grow_dip(&self) -> f64 {
        self.avg_ipc(DRAM_GROW_WINDOW) / self.avg_ipc(DRAM_GROW_WINDOW - 1)
    }

    /// IPC of the final window relative to the pre-shrink steady state —
    /// how fully the tier recovers once the grown cache re-warms.
    pub fn recovery(&self) -> f64 {
        self.avg_ipc(DRAM_WINDOWS - 1) / self.avg_ipc(DRAM_SHRINK_WINDOW - 1)
    }

    /// Renders the study.
    pub fn render(&self) -> String {
        let n = DRAM_WINDOWS;
        let mut header = vec!["App".to_string()];
        for w in 0..n {
            header.push(format!("w{w} IPC"));
        }
        header.push("L4 hit% w7".to_string());
        header.push("rsz-wb".to_string());
        header.push("nJ/KI w2/w3/w7".to_string());
        let mut t = TextTable::new(header);
        let per_ki =
            |w: &TransientWindow| w.memory_energy.nj() * 1000.0 / w.instructions as f64;
        for (name, ws) in &self.rows {
            let mut row = vec![name.to_string()];
            for w in ws {
                row.push(f2(w.ipc()));
            }
            let last = &ws[n - 1];
            row.push(pct(last.l4.hits as f64 / last.l4.accesses.max(1) as f64));
            let rsz_wb: u64 = ws.iter().map(|w| w.l4.resize_writebacks).sum();
            row.push(rsz_wb.to_string());
            row.push(format!(
                "{}/{}/{}",
                f2(per_ki(&ws[DRAM_SHRINK_WINDOW - 1])),
                f2(per_ki(&ws[DRAM_SHRINK_WINDOW])),
                f2(per_ki(&ws[n - 1])),
            ));
            t.row(row);
        }
        let mut avg = vec!["AVERAGE".to_string()];
        for w in 0..n {
            avg.push(f2(self.avg_ipc(w)));
        }
        avg.push(pct(self.avg_hit_rate(n - 1)));
        avg.push("-".to_string());
        avg.push(format!(
            "{}/{}/{}",
            f2(self.avg_energy_per_ki(DRAM_SHRINK_WINDOW - 1)),
            f2(self.avg_energy_per_ki(DRAM_SHRINK_WINDOW)),
            f2(self.avg_energy_per_ki(n - 1)),
        ));
        t.row(avg);
        format!(
            "L4 DRAM-cache resize transients: 8 -> 4 banks at w{}, 4 -> 12 at w{}\n{}\
             shrink-window IPC vs prior window: {}\n\
             grow-window IPC vs prior window: {}\n\
             final-window IPC vs pre-shrink: {}\n",
            DRAM_SHRINK_WINDOW,
            DRAM_GROW_WINDOW,
            t.render(),
            rel(self.shrink_dip()),
            rel(self.grow_dip()),
            rel(self.recovery()),
        )
    }
}

// ---------------------------------------------------------------------------
// Sampled-simulation error-vs-speedup study (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// The organizations the `sampling` study validates the sampler on: the
/// set-associative baseline and the flagship distance-associative
/// NuRAPID — the paper's headline comparison, which the sampled runs
/// must reproduce within tolerance.
pub const SAMPLING_KEYS: [&str; 2] = ["sa4", "nf4"];

/// Detail divisors the study sweeps: a divisor of N times roughly 1/N of
/// each sampling period in detail, i.e. an ~N× reduction in detailed
/// (timed) instructions versus full simulation.
pub const SAMPLING_DIVISORS: [u64; 4] = [5, 10, 20, 40];

/// The sampling regime for one study point: 20 windows across the
/// measured phase, each timing `period / divisor` observed ops after a
/// quarter-sized pipeline warm-up.
pub fn sampling_spec(scale: Scale, divisor: u64) -> SampleSpec {
    let period = (scale.measure / 20).max(1_000);
    let measure = (period / divisor).max(100);
    SampleSpec {
        period,
        warmup: (measure / 4).clamp(20, 2_000),
        measure,
    }
}

/// Digest keying one study run: the plain sampled digest under a
/// study-specific domain tag, so full-window `"sampled_app"` artifacts
/// never share a manifest key with the plain `"app"` estimates that
/// [`Sweep::with_sample`] runs store under [`sampling::sampled_digest`].
fn sampled_study_digest(
    profile: &BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    spec: SampleSpec,
    intervals: u64,
) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-sampling-study-v1");
    let raw = sampling::sampled_digest(profile, kind, scale, spec, intervals).raw();
    h.write_u64((raw >> 64) as u64);
    h.write_u64(raw as u64);
    h.digest()
}

/// One point of the error-vs-speedup study: one detail divisor, with
/// per-organization errors of the sampled estimates against the full
/// runs and the detailed-instruction reduction that bought them.
#[derive(Debug, Clone)]
pub struct SamplingPoint {
    /// Detail divisor (see [`SAMPLING_DIVISORS`]).
    pub divisor: u64,
    /// The regime this point ran under.
    pub spec: SampleSpec,
    /// Detailed-instruction reduction versus full simulation.
    pub speedup: f64,
    /// Per-key relative error of the sampled geomean IPC (order of
    /// [`SAMPLING_KEYS`]).
    pub ipc_err: [f64; 2],
    /// Per-key relative error of the sampled mean energy/KI.
    pub energy_err: [f64; 2],
    /// DA/SA geomean-IPC ratio from the full runs.
    pub delta_full: f64,
    /// The same ratio from the sampled estimates.
    pub delta_sampled: f64,
    /// Mean relative 95%-CI half-width of the per-app sampled IPC
    /// (`nf4` leg) — how tight the estimator itself thinks it is.
    pub mean_rel_ci: f64,
}

/// The `sampling` experiment: sampled estimates vs full simulation on
/// the SA/DA pair across [`SAMPLING_DIVISORS`].
#[derive(Debug, Clone)]
pub struct SamplingStudy {
    /// One point per divisor, in [`SAMPLING_DIVISORS`] order.
    pub points: Vec<SamplingPoint>,
}

fn energy_per_ki(run: &AppRun) -> f64 {
    run.energy.total().nj() * 1000.0 / run.core.instructions.max(1) as f64
}

/// Regenerates the error-vs-speedup study: full-detail baselines for
/// [`SAMPLING_KEYS`], then sampled estimates at every divisor, all on
/// the sweep's worker pool. The full baselines always run unsampled
/// ([`Sweep::run_full`]), so the study is meaningful even on a sweep
/// built with [`Sweep::with_sample`].
pub fn sampling(sweep: &Sweep) -> SamplingStudy {
    let apps = sweep.apps().to_vec();
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    for &key in &SAMPLING_KEYS {
        for &app in &apps {
            sweep.emit(&format!("{key}/{}", app.name), EventKind::Queued);
            jobs.push(Box::new(move || drop(sweep.run_full(app, key))));
        }
    }
    for &divisor in &SAMPLING_DIVISORS {
        let spec = sampling_spec(sweep.scale, divisor);
        for &key in &SAMPLING_KEYS {
            for &app in &apps {
                sweep.emit(&format!("sampled-{key}/{}", app.name), EventKind::Queued);
                jobs.push(Box::new(move || drop(sweep.run_sampled(app, key, spec))));
            }
        }
    }
    pool::run_jobs(sweep.threads(), jobs);

    let full_ipc: Vec<f64> = SAMPLING_KEYS
        .iter()
        .map(|&key| geomean(apps.iter().map(|&a| sweep.run_full(a, key).ipc())))
        .collect();
    let full_eki: Vec<f64> = SAMPLING_KEYS
        .iter()
        .map(|&key| {
            apps.iter().map(|&a| energy_per_ki(&sweep.run_full(a, key))).sum::<f64>()
                / apps.len() as f64
        })
        .collect();

    let points = SAMPLING_DIVISORS
        .iter()
        .map(|&divisor| {
            let spec = sampling_spec(sweep.scale, divisor);
            let runs: Vec<Vec<Arc<SampledRun>>> = SAMPLING_KEYS
                .iter()
                .map(|&key| apps.iter().map(|&a| sweep.run_sampled(a, key, spec)).collect())
                .collect();
            let ipc: Vec<f64> = runs
                .iter()
                .map(|rs| geomean(rs.iter().map(|r| r.run.ipc())))
                .collect();
            let eki: Vec<f64> = runs
                .iter()
                .map(|rs| {
                    rs.iter().map(|r| energy_per_ki(&r.run)).sum::<f64>() / rs.len() as f64
                })
                .collect();
            let err = |est: &[f64], full: &[f64], i: usize| (est[i] - full[i]).abs() / full[i];
            SamplingPoint {
                divisor,
                spec,
                speedup: runs[0][0].speedup(),
                ipc_err: [err(&ipc, &full_ipc, 0), err(&ipc, &full_ipc, 1)],
                energy_err: [err(&eki, &full_eki, 0), err(&eki, &full_eki, 1)],
                delta_full: full_ipc[1] / full_ipc[0],
                delta_sampled: ipc[1] / ipc[0],
                mean_rel_ci: runs[1].iter().map(|r| r.ipc().rel_ci()).sum::<f64>()
                    / runs[1].len() as f64,
            }
        })
        .collect();
    SamplingStudy { points }
}

impl SamplingStudy {
    /// The point whose detailed-cycle reduction is closest to 20× — the
    /// headline regime the acceptance criteria are stated against.
    pub fn headline(&self) -> &SamplingPoint {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.speedup - 20.0).abs().partial_cmp(&(b.speedup - 20.0).abs()).unwrap()
            })
            .expect("study has points")
    }

    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "1/N detail",
            "speedup",
            "sa4 IPC err",
            "nf4 IPC err",
            "sa4 nJ/KI err",
            "nf4 nJ/KI err",
            "DA/SA full",
            "DA/SA sampled",
            "mean 95% CI",
        ]);
        for p in &self.points {
            t.row(vec![
                format!("1/{}", p.divisor),
                format!("{:.1}x", p.speedup),
                pct(p.ipc_err[0]),
                pct(p.ipc_err[1]),
                pct(p.energy_err[0]),
                pct(p.energy_err[1]),
                rel(p.delta_full),
                rel(p.delta_sampled),
                pct(p.mean_rel_ci),
            ]);
        }
        format!(
            "Sampled vs full simulation: set-associative (sa4) vs \
             distance-associative (nf4)\n\
             (20 windows per run; errors are sampled-estimate vs full-run \
             geomean IPC and mean nJ/KI;\n \
             the 95% CI column is the estimator's own mean relative \
             confidence half-width)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::profiles::by_name;

    fn tiny_sweep() -> Sweep {
        Sweep::with_apps(
            Scale {
                warmup: 40_000,
                measure: 60_000,
            },
            vec![by_name("galgel").unwrap(), by_name("wupwise").unwrap()],
        )
    }

    #[test]
    fn table2_hits_paper_anchors() {
        let t = table2();
        assert_eq!(t.rows.len(), 8);
        // Paper values: 0.42, 3.3, 0.40, 4.6, 0.18, -, 0.19, 0.57.
        assert!((t.rows[0].1 - 0.42).abs() / 0.42 < 0.3);
        assert!((t.rows[1].1 - 3.3).abs() / 3.3 < 0.3);
        assert!((t.rows[6].1 - 0.19).abs() < 1e-9);
        assert!((t.rows[7].1 - 0.57).abs() < 1e-9);
        assert!(t.render().contains("sm-search"));
    }

    #[test]
    fn table4_matches_paper_structure() {
        let t = table4();
        assert_eq!(t.rows.len(), 8);
        // Fastest MB: 19 / 14 / 12 cycles.
        assert_eq!((t.rows[0].0, t.rows[0].1, t.rows[0].2), (19, 14, 12));
        // D-NUCA MB1 average near 7.
        assert!((t.rows[0].3 .1 - 7.0).abs() < 2.0);
        let r = t.render();
        assert!(r.contains("MB 1") && r.contains("D-NUCA"));
    }

    #[test]
    fn fig4_shows_placement_advantage() {
        let s = tiny_sweep();
        let f = fig4(&s);
        // Distance-associative placement (index 1) must put more accesses
        // in the fastest d-group than set-associative (index 0).
        assert!(
            f.avg_first_group(1) > f.avg_first_group(0),
            "d-a {} vs s-a {}",
            f.avg_first_group(1),
            f.avg_first_group(0)
        );
        assert!(f.render().contains("AVERAGE"));
    }

    #[test]
    fn fig5_orders_policies() {
        let s = tiny_sweep();
        let f = fig5(&s);
        // demotion-only (0) < next-fastest (1); fastest (2) comparable to
        // next-fastest.
        assert!(f.avg_first_group(0) < f.avg_first_group(1));
        assert!((f.avg_first_group(2) - f.avg_first_group(1)).abs() < 0.1);
        // Miss fractions identical across policies (distance replacement
        // never evicts).
        assert!((f.avg_miss(0) - f.avg_miss(1)).abs() < 1e-12);
        assert!((f.avg_miss(1) - f.avg_miss(2)).abs() < 1e-12);
    }

    #[test]
    fn fig7_orders_dgroup_counts() {
        let s = tiny_sweep();
        let f = fig7(&s);
        // Fewer, larger d-groups hold more of the working set.
        assert!(f.avg_first_group(0) >= f.avg_first_group(1));
        assert!(f.avg_first_group(1) >= f.avg_first_group(2));
    }

    #[test]
    fn fig6_ideal_is_upper_bound() {
        let s = tiny_sweep();
        let f = fig6(&s);
        // ideal (3) >= next-fastest (1) >= demotion-only (0) on average.
        assert!(f.overall(3) >= f.overall(1) - 1e-9);
        assert!(f.overall(1) >= f.overall(0) - 0.02);
        assert!(f.render().contains("OVERALL"));
    }

    #[test]
    fn sweep_caches_runs() {
        let s = tiny_sweep();
        let _ = fig5(&s);
        let n = s.runs();
        let _ = fig6(&s); // reuses dm4/nf4/fs4; adds base + id4
        assert_eq!(s.runs(), n + 4);
        assert_eq!(s.simulated() as usize, s.runs(), "no artifacts attached");
    }

    #[test]
    fn same_label_different_configs_do_not_collide() {
        // The old sweep keyed runs by (app, label) strings, so two
        // distinct configurations sharing a label silently aliased. The
        // digest-keyed store must treat them as distinct runs.
        let s = tiny_sweep();
        let app = by_name("galgel").unwrap();
        let a = s.run_kind(app, "same-label", &L2Kind::NuRapid(NuRapidConfig::micro2003(4)));
        let b = s.run_kind(
            app,
            "same-label",
            &L2Kind::NuRapid(
                NuRapidConfig::micro2003(4).with_promotion(PromotionPolicy::DemotionOnly),
            ),
        );
        assert_eq!(s.runs(), 2, "two configs, two runs, despite one label");
        assert_ne!(
            a.group_fracs, b.group_fracs,
            "distinct promotion policies must not share a result"
        );
        // Same config under two different labels is still one run.
        let c = s.run_kind(app, "other-label", &L2Kind::NuRapid(NuRapidConfig::micro2003(4)));
        assert_eq!(s.runs(), 2);
        assert_eq!(*a, *c);
    }

    #[test]
    fn prefetch_populates_the_store_for_any_thread_count() {
        let serial = tiny_sweep();
        let _ = fig5(&serial);
        for threads in [1, 4] {
            let s = Sweep::with_apps(
                Scale {
                    warmup: 40_000,
                    measure: 60_000,
                },
                vec![by_name("galgel").unwrap(), by_name("wupwise").unwrap()],
            )
            .with_threads(threads);
            s.prefetch_all(&["dm4", "nf4", "fs4"]);
            assert_eq!(s.runs(), 6);
            let f = fig5(&s);
            // Figures rendered from the prefetched store equal the serial
            // baseline byte-for-byte.
            assert_eq!(f.render(), fig5(&serial).render(), "threads={threads}");
            // fig5 added no new runs: everything was prefetched.
            assert_eq!(s.runs(), 6);
        }
    }

    #[test]
    fn sweep_emits_progress_events() {
        use simsched::progress::Counts;
        let counts = Counts::new();
        let s = tiny_sweep().with_observer(counts.observer());
        s.prefetch_all(&["nf4"]);
        let _ = s.run(by_name("galgel").unwrap(), "nf4"); // store hit
        assert_eq!(counts.queued.load(Ordering::Relaxed), 2);
        assert_eq!(counts.simulated.load(Ordering::Relaxed), 2);
        assert_eq!(counts.shared.load(Ordering::Relaxed), 1);
        assert_eq!(counts.finished(), 3);
    }

    #[test]
    fn fig10_nurapid_beats_dnuca_energy() {
        let s = tiny_sweep();
        let f = fig10(&s);
        assert!(
            f.energy_reduction_vs_dnuca() > 0.3,
            "reduction {}",
            f.energy_reduction_vs_dnuca()
        );
        assert!(f.access_reduction_vs_dnuca() > 0.2);
        assert!(f.render().contains("Figure 10"));
    }

    #[test]
    fn fig11_nurapid_improves_edp() {
        let s = tiny_sweep();
        let f = fig11(&s);
        assert!(f.nurapid_mean() < 1.0, "EDP {}", f.nurapid_mean());
        assert!(f.render().contains("GEOMEAN"));
    }

    #[test]
    fn sec531_lru_vs_random() {
        let s = tiny_sweep();
        let l = sec531(&s);
        assert_eq!(l.rows.len(), 2);
        // Under demotion-only, LRU must beat random clearly; under
        // next-fastest the gap shrinks (promotion compensates).
        let dm_gap = l.rows[0].2 - l.rows[0].1;
        let nf_gap = l.rows[1].2 - l.rows[1].1;
        assert!(dm_gap > nf_gap - 0.02, "dm {dm_gap} vs nf {nf_gap}");
        assert!(l.render().contains("5.3.1"));
    }

    #[test]
    #[should_panic(expected = "unknown configuration")]
    fn unknown_key_panics() {
        let _ = kind_of("warp-drive");
    }

    #[test]
    fn orgs_compares_the_plugin_roster() {
        // art's 3.5-MB hot set overflows D-NUCA's 1-MB fastest d-group,
        // which is where the compressed ways earn their keep; and bubble
        // promotion needs roughly `n_positions` hits per block to lift it
        // into the fastest d-group, so this study needs a longer measure
        // window than the other figure tests.
        let s = Sweep::with_apps(
            Scale {
                warmup: 60_000,
                measure: 300_000,
            },
            vec![by_name("art").unwrap()],
        );
        let f = orgs(&s);
        let at = |key| f.configs.iter().position(|&c| c == key).unwrap();
        let (perf, memo, cnuca) = (at("dn-perf"), at("dn-memo"), at("cnuca"));
        // Compressed NUCA's four half-frame fast ways hold more of the
        // working set: a higher fastest-d-group residency than D-NUCA's
        // two raw ways.
        assert!(
            f.avg_first_group(cnuca) > f.avg_first_group(perf),
            "cnuca g0 {} vs dn-perf g0 {}",
            f.avg_first_group(cnuca),
            f.avg_first_group(perf)
        );
        // Way memoization skips the smart-search array and the multicast
        // on memo hits: less L2 energy than ss-performance on the same
        // trace.
        assert!(
            f.avg_energy_per_ki(memo) < f.avg_energy_per_ki(perf),
            "dn-memo {} nJ/KI vs dn-perf {}",
            f.avg_energy_per_ki(memo),
            f.avg_energy_per_ki(perf)
        );
        let r = f.render();
        assert!(r.contains("AVERAGE") && r.contains("cnuca g0"));
    }

    #[test]
    fn restriction_ablation_orders_flexibility() {
        let s = tiny_sweep();
        let a = restriction_ablation(&s);
        assert_eq!(a.rows.len(), 3);
        // Pointer bits shrink with restriction.
        assert!(a.rows[0].1 > a.rows[1].1);
        assert!(a.rows[1].1 > a.rows[2].1);
        // Flexibility can only help the fast-group fraction (within noise).
        assert!(a.rows[0].2 >= a.rows[2].2 - 0.05);
        assert!(a.render().contains("2.4.3"));
    }

    #[test]
    fn tsv_rendering_is_machine_readable() {
        let s = tiny_sweep();
        let d = fig5(&s).render_tsv();
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 apps");
        let cols = lines[0].split('\t').count();
        assert_eq!(lines[1].split('\t').count(), cols);
        // 3 configs x (4 groups + miss) + app column.
        assert_eq!(cols, 1 + 3 * 5);
        let p = fig8(&s).render_tsv();
        assert!(p.starts_with("app\tnf2\tnf4\tnf8\n"));
    }

    #[test]
    fn table3_reports_roster() {
        let s = tiny_sweep();
        let t = table3(&s);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r.2 > 0.0));
        assert!(t.render().contains("galgel"));
    }

    #[test]
    fn dram_windows_track_the_resize_schedule() {
        let s = tiny_sweep();
        let d = dram(&s);
        assert_eq!(d.rows.len(), 2);
        assert_eq!(s.runs(), 2, "transient runs live in the dram store");
        for (name, ws) in &d.rows {
            assert_eq!(ws.len(), DRAM_WINDOWS, "{name}");
            let banks: Vec<u32> = ws.iter().map(|w| w.n_banks).collect();
            assert_eq!(banks, vec![8, 8, 8, 4, 4, 4, 12, 12], "{name}");
            // Each resize lands exactly in the first window of its regime.
            let resizes: Vec<u64> = ws.iter().map(|w| w.l4.resizes).collect();
            assert_eq!(resizes, vec![0, 0, 0, 1, 0, 0, 1, 0], "{name}");
            let instructions: u64 = ws.iter().map(|w| w.instructions).sum();
            assert_eq!(instructions, 60_000, "{name}: windows tile the measured phase");
        }
        // The shrink transient costs memory energy: retired banks flush
        // their dirty blocks and the survivors re-fill the lost capacity.
        assert!(
            d.avg_energy_per_ki(DRAM_SHRINK_WINDOW)
                > d.avg_energy_per_ki(DRAM_SHRINK_WINDOW - 1),
            "shrink window {} nJ/KI vs steady {}",
            d.avg_energy_per_ki(DRAM_SHRINK_WINDOW),
            d.avg_energy_per_ki(DRAM_SHRINK_WINDOW - 1)
        );
        let r = d.render();
        assert!(r.contains("AVERAGE") && r.contains("8 -> 4"));
    }

    #[test]
    fn dram_runs_are_bit_identical_across_threads_and_checkpoint_stores() {
        let serial = tiny_sweep();
        let apps = serial.apps().to_vec();
        let baseline: Vec<_> = apps.iter().map(|&p| serial.run_dram(p)).collect();
        for threads in [2, 8] {
            let s = tiny_sweep().with_threads(threads);
            s.prefetch_dram();
            for (&p, b) in apps.iter().zip(&baseline) {
                assert_eq!(*s.run_dram(p), **b, "threads={threads}");
            }
        }
        let dir = std::env::temp_dir()
            .join(format!("simchk-exps-dram-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for pass in ["cold", "warm"] {
            let s = tiny_sweep().with_checkpoints(&dir).expect("open checkpoint store");
            for (&p, b) in apps.iter().zip(&baseline) {
                assert_eq!(*s.run_dram(p), **b, "{pass} checkpoint store");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dram_runs_resume_from_artifacts() {
        let dir = std::env::temp_dir()
            .join(format!("simart-exps-dram-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = by_name("galgel").unwrap();
        let first = tiny_sweep().with_artifacts(&dir).expect("open artifacts");
        let a = first.run_dram(app);
        assert_eq!((first.simulated(), first.resumed()), (1, 0));
        let second = tiny_sweep().with_artifacts(&dir).expect("reopen artifacts");
        let b = second.run_dram(app);
        assert_eq!((second.simulated(), second.resumed()), (0, 1));
        assert_eq!(*a, *b, "artifact resume must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tiny_spec() -> SampleSpec {
        SampleSpec {
            period: 5_000,
            warmup: 200,
            measure: 800,
        }
    }

    #[test]
    fn sampled_sweeps_are_bit_identical_across_threads_and_stores() {
        let serial = tiny_sweep().with_sample(Some(tiny_spec())).with_intervals(4);
        let apps = serial.apps().to_vec();
        let baseline: Vec<_> = apps.iter().map(|&p| serial.run(p, "nf4")).collect();
        // A sampled run is an estimate, not the full run.
        assert_ne!(*baseline[0], *tiny_sweep().run(apps[0], "nf4"));

        for threads in [2, 8] {
            let s = tiny_sweep()
                .with_sample(Some(tiny_spec()))
                .with_intervals(4)
                .with_threads(threads);
            s.prefetch_all(&["nf4"]);
            for (&p, b) in apps.iter().zip(&baseline) {
                assert_eq!(*s.run(p, "nf4"), **b, "threads={threads}");
            }
        }
        let dir = std::env::temp_dir()
            .join(format!("simchk-exps-sampled-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for pass in ["cold", "warm"] {
            let s = tiny_sweep()
                .with_sample(Some(tiny_spec()))
                .with_intervals(4)
                .with_threads(2)
                .with_checkpoints(&dir)
                .expect("open checkpoint store");
            for (&p, b) in apps.iter().zip(&baseline) {
                assert_eq!(*s.run(p, "nf4"), **b, "{pass} checkpoint store");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_sweeps_resume_from_artifacts_without_aliasing_full_runs() {
        let dir = std::env::temp_dir()
            .join(format!("simart-exps-sampled-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = by_name("galgel").unwrap();
        // A full run and a sampled run of the same job share the manifest
        // without colliding (distinct digests).
        let full = tiny_sweep().with_artifacts(&dir).expect("open artifacts");
        let f = full.run(app, "nf4");
        let first = tiny_sweep()
            .with_sample(Some(tiny_spec()))
            .with_artifacts(&dir)
            .expect("open artifacts");
        let a = first.run(app, "nf4");
        assert_eq!((first.simulated(), first.resumed()), (1, 0));
        let second = tiny_sweep()
            .with_sample(Some(tiny_spec()))
            .with_artifacts(&dir)
            .expect("reopen artifacts");
        let b = second.run(app, "nf4");
        assert_eq!((second.simulated(), second.resumed()), (0, 1));
        assert_eq!(*a, *b, "artifact resume must be bit-identical");
        assert_ne!(*a, *f);
        // The full run still resumes as itself.
        let full2 = tiny_sweep().with_artifacts(&dir).expect("reopen artifacts");
        assert_eq!(*full2.run(app, "nf4"), *f);
        assert_eq!((full2.simulated(), full2.resumed()), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampling_study_bounds_errors_and_orders_speedups() {
        let s = tiny_sweep().with_threads(2);
        let study = sampling(&s);
        assert_eq!(study.points.len(), SAMPLING_DIVISORS.len());
        for pair in study.points.windows(2) {
            assert!(
                pair[1].speedup > pair[0].speedup,
                "speedup must grow with the divisor"
            );
        }
        for p in &study.points {
            assert!(p.speedup >= 2.0);
            for k in 0..2 {
                assert!(
                    p.ipc_err[k] < 0.5 && p.energy_err[k] < 0.5,
                    "1/{} errors out of range: {:?} {:?}",
                    p.divisor,
                    p.ipc_err,
                    p.energy_err
                );
            }
            // The sampled estimate preserves the direction of the paper's
            // headline comparison: DA beats SA.
            assert!(p.delta_full > 1.0 && p.delta_sampled > 1.0);
        }
        let r = study.render();
        assert!(r.contains("DA/SA") && r.contains("1/40"));
    }

    #[test]
    fn with_l4_wraps_keyed_runs_but_not_explicit_kinds() {
        let app = by_name("galgel").unwrap();
        let plain = tiny_sweep();
        let wrapped = tiny_sweep().with_l4(Some(L4Config::tdram()));
        let p = plain.run(app, "nf4");
        let w = wrapped.run(app, "nf4");
        assert_ne!(*p, *w, "an attached L4 must change the run");
        // An explicit kind is taken verbatim — no silent re-wrapping, so
        // `run_dram`'s already-L4 configuration cannot be double-wrapped.
        let e = wrapped.run_kind(app, "nf4", &kind_of("nf4"));
        assert_eq!(*p, *e, "explicit kinds bypass the sweep's L4");
    }
}
