//! SMARTS-style sampled simulation + interval-parallel execution
//! (DESIGN.md §16, ROADMAP item 1).
//!
//! Two composable mechanisms turn a billion-instruction run from
//! wall-clock-prohibitive into minutes:
//!
//! 1. **Periodic sampling** ([`SampleSpec`]): the measured phase is cut
//!    into equal periods; each period is fast-forwarded functionally
//!    (every architectural effect applied, no timing, no energy, no
//!    telemetry — the same machinery as warm-up) except for a short
//!    detailed window at its head. The window's first `warmup` ops
//!    refill the out-of-order pipeline and are discarded; the next
//!    `measure` ops are observed as one [`WindowObs`]. Ratio metrics
//!    (IPC, miss rate, energy per kilo-instruction) estimated from the
//!    windows converge on the full run's values, with the spread
//!    reported as a 95% confidence interval by the [`Estimator`].
//!
//! 2. **Interval-parallel execution**: the window list is split into K
//!    contiguous intervals. Interval k starts from the architectural
//!    state at its first window's trace offset — produced by one
//!    sequential functional prefix pass (interval k's snapshot continues
//!    from where interval k−1's left off) and keyed by
//!    [`interval_digest`] in the [`CheckpointStore`], so a warm store
//!    skips the prefix entirely. The detailed intervals then run as
//!    independent jobs on [`simsched::pool`], whose results come back in
//!    job order for any thread count; stitching is therefore plain
//!    concatenation in trace order, and the merged result is
//!    bit-identical across 1/2/8 threads and cold/warm stores.
//!
//! Interval 0's snapshot *is* the ordinary warm-up checkpoint (same
//! digest, same payload layout), so sampled and unsampled runs share it.
//!
//! Both warm-up modes were proven architecturally bit-identical by the
//! PR-5 differentials, which is what licenses the functional prefix: the
//! state seeding interval k is exactly the state a fully-functional run
//! of the prefix would produce, independent of how many windows preceded
//! it. The estimator trades that for timing fidelity inside the windows
//! only — the documented, quantified sampling error (`--exp sampling`).

use crate::runner::{warmup_digest, AppRun, L2Kind, RunOptions, Scale, TRACE_SEED};
use cpu::{CoreParams, CoreResult, OooCore};
use energy::core::CoreEnergyModel;
use energy::EnergyTally;
use memsys::dramcache::L4Stats;
use memsys::l1::CoreMemSystem;
use memsys::org::Organization;
use simbase::digest::{Digest, Hasher128};
use simbase::snapshot::{Decoder, Encoder};
use simbase::EnergyNj;
use simsched::pool;
use simtel::Telemetry;
use std::sync::Arc;
use std::time::Instant;
use workloads::{BenchProfile, TraceGenerator};

/// The sampling regime: every `period` measured instructions, one
/// detailed window of `warmup` discarded ops (out-of-order pipeline
/// refill) followed by `measure` observed ops; the rest of the period is
/// functional fast-forward. `warmup + measure <= period` always.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Instructions per sampling period.
    pub period: u64,
    /// Detailed-but-discarded ops at each window's head.
    pub warmup: u64,
    /// Observed ops per window.
    pub measure: u64,
}

impl SampleSpec {
    /// The default regime for a scale (the `--sample` flag): 20 windows
    /// across the measured phase with a 1/20 detailed fraction — ≥20×
    /// fewer detailed (timed) instructions than a full run at every
    /// scale, and far more at [`Scale::huge`], where the per-window
    /// detail is capped.
    pub fn for_scale(scale: Scale) -> SampleSpec {
        let period = (scale.measure / 20).max(1_000);
        SampleSpec {
            period,
            warmup: (period / 100).clamp(20, 2_000),
            measure: (period / 25).clamp(100, 10_000),
        }
    }

    /// Number of whole sampling windows in the measured phase (≥ 1).
    pub fn windows(&self, scale: Scale) -> u64 {
        (scale.measure / self.period).max(1)
    }

    /// Detailed (timed) instructions per window, discarded + observed.
    pub fn detailed_per_window(&self) -> u64 {
        self.warmup + self.measure
    }

    /// Feeds every field into `h` (part of every sampled digest).
    pub fn digest_into(&self, h: &mut Hasher128) {
        h.write_u64(self.period);
        h.write_u64(self.warmup);
        h.write_u64(self.measure);
    }
}

/// Streaming mean / sample-variance accumulator (Welford), reporting a
/// 95% confidence interval for the mean — no external stats deps. Window
/// observations are fed strictly in trace order, so the result is
/// bit-identical for any execution interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Estimator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Estimator {
    /// A fresh, empty estimator.
    pub fn new() -> Self {
        Estimator::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Observations so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator; 0 below two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Half-width of the 95% confidence interval for the mean:
    /// `1.96 · sqrt(s² / n)` (normal approximation — the windows are
    /// many and near-independent by construction).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * (self.variance() / self.n as f64).sqrt()
        }
    }

    /// The `(n, mean, ci95)` summary.
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            ci95: self.ci95(),
        }
    }
}

/// A mean ± 95%-CI summary of one sampled metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of windows observed.
    pub n: u64,
    /// Mean across windows.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
}

impl Summary {
    /// Relative CI half-width (`ci95 / mean`; 0 for a zero mean).
    pub fn rel_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95 / self.mean
        }
    }
}

/// One sampled measurement window: core and organization deltas over
/// exactly `spec.measure` observed instructions. Functional fast-forward
/// touches no counter (the warm paths elide them by design), and the
/// window's own detailed warm-up is excluded by delta bracketing, so
/// every field covers the observed ops alone.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowObs {
    /// Window index in trace order.
    pub index: u64,
    /// Measured-phase op offset of the window's period start.
    pub start: u64,
    /// Core counters over the observed ops.
    pub core: CoreResult,
    /// L1 accesses (I + D) over the observed ops.
    pub l1_accesses: u64,
    /// Lower-organization demand accesses.
    pub l2_accesses: u64,
    /// Lower-organization demand misses.
    pub l2_misses: u64,
    /// Data-array accesses including swap/search traffic.
    pub dgroup_accesses: u64,
    /// Block movements.
    pub swaps: u64,
    /// Demand hits per d-group (weighted counts; empty without groups).
    pub group_hits: Vec<f64>,
    /// Off-chip accesses.
    pub memory_accesses: u64,
    /// L4 event deltas, when an L4 tier is attached.
    pub l4: Option<L4Stats>,
    /// Full-system energy over the observed ops.
    pub energy: EnergyTally,
}

impl WindowObs {
    /// Window IPC.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }

    /// Window miss fraction of lower-organization accesses.
    pub fn miss_frac(&self) -> f64 {
        self.l2_misses as f64 / self.l2_accesses.max(1) as f64
    }

    /// Window energy per kilo-instruction (nJ/KI).
    pub fn energy_per_ki(&self) -> f64 {
        self.energy.total().nj() * 1000.0 / self.core.instructions.max(1) as f64
    }
}

/// The result of one sampled run: the estimated [`AppRun`] (assembled
/// from the summed window deltas, so every ratio metric is the sampled
/// estimate of the full run's) plus the per-window observations and the
/// sampling bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledRun {
    /// Estimated run (core and organization counters cover the observed
    /// windows only; ratio metrics estimate the full run's).
    pub run: AppRun,
    /// The sampling regime.
    pub spec: SampleSpec,
    /// Interval count the run was split into.
    pub intervals: u64,
    /// Instructions the full measured phase represents.
    pub total_instructions: u64,
    /// Detailed (timed) instructions actually executed, including the
    /// per-window discarded warm-ups.
    pub detailed_instructions: u64,
    /// Per-window observations, in trace order.
    pub windows: Vec<WindowObs>,
}

impl SampledRun {
    /// IPC estimate across windows.
    pub fn ipc(&self) -> Summary {
        self.estimate(WindowObs::ipc)
    }

    /// Miss-fraction estimate across windows.
    pub fn miss_frac(&self) -> Summary {
        self.estimate(WindowObs::miss_frac)
    }

    /// Energy-per-kilo-instruction estimate across windows (nJ/KI).
    pub fn energy_per_ki(&self) -> Summary {
        self.estimate(WindowObs::energy_per_ki)
    }

    /// Ratio of represented to detailed (timed) instructions — the
    /// headline "≥20× fewer detailed cycles" lever.
    pub fn speedup(&self) -> f64 {
        self.total_instructions as f64 / self.detailed_instructions.max(1) as f64
    }

    fn estimate(&self, f: impl Fn(&WindowObs) -> f64) -> Summary {
        let mut e = Estimator::new();
        for w in &self.windows {
            e.add(f(w));
        }
        e.summary()
    }
}

/// Digest keying interval k's architectural snapshot: the warm-up digest
/// (application, architectural configuration slice, warm-up budget,
/// seed, checkpoint version) under a distinct domain tag, plus the
/// absolute trace offset the snapshot was taken at. Timing-only knobs
/// are excluded exactly as for warm-up checkpoints, so every timing
/// variant of a configuration shares one snapshot chain. Offset 0 (the
/// warm-up boundary) is keyed by [`warmup_digest`] itself — interval 0
/// reuses the ordinary warm-up checkpoint.
pub fn interval_digest(
    profile: &BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    offset: u64,
) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-sample-snap-v1");
    let raw = warmup_digest(profile, kind, scale).raw();
    h.write_u64((raw >> 64) as u64);
    h.write_u64(raw as u64);
    h.write_u64(offset);
    h.digest()
}

/// Digest of one sampled job: the plain run digest under a distinct
/// domain tag, plus every sampling knob. A sampled run can never alias
/// its unsampled twin (or a different regime) in a store or on disk.
pub fn sampled_digest(
    profile: &BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    spec: SampleSpec,
    intervals: u64,
) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-sampled-v1");
    let raw = crate::runner::run_digest(profile, kind, scale).raw();
    h.write_u64((raw >> 64) as u64);
    h.write_u64(raw as u64);
    spec.digest_into(&mut h);
    h.write_u64(intervals);
    h.digest()
}

type FunctionalState = (OooCore<Box<dyn Organization>>, TraceGenerator);

/// A fresh system for the functional prefix pass.
fn fresh_functional(profile: BenchProfile, kind: &L2Kind) -> FunctionalState {
    let mut lower = kind.build();
    lower.prefill();
    let mem = CoreMemSystem::micro2003(lower);
    let core = OooCore::new(CoreParams::micro2003(), mem);
    let gen = TraceGenerator::new(profile, TRACE_SEED);
    (core, gen)
}

/// Serialises the architectural state in the warm-up-checkpoint payload
/// order (generator, predictor, L1, lower organization) — interval-0
/// snapshots are byte-compatible with ordinary warm-up checkpoints.
fn save_arch(core: &OooCore<Box<dyn Organization>>, gen: &TraceGenerator) -> Vec<u8> {
    let mut e = Encoder::new();
    gen.save_state(&mut e);
    core.predictor().save_state(&mut e);
    core.mem().save_l1_state(&mut e);
    core.mem().lower().save_state(&mut e);
    e.into_bytes()
}

/// Runs `profile` on `kind` at `scale` under the sampling regime `spec`,
/// split into `intervals` interval jobs executed on up to `threads`
/// worker threads. The result is **bit-identical for any thread count
/// and for cold, warm, or absent checkpoint stores**: interval seeding
/// always goes through the encoded snapshot bytes, and the window
/// observations are stitched back in trace order (the worker pool
/// returns job results in submission order by contract).
///
/// The warm-up mode in `opts` is ignored — the prefix is always the
/// functional fast-forward (the two modes build bit-identical
/// architectural state, so only wall time could differ). Resize
/// schedules are not applied: they are keyed to detailed op indices of
/// an unsampled measured phase and have no meaning under sampling.
///
/// # Panics
///
/// Panics when `spec.warmup + spec.measure > spec.period` or
/// `spec.period == 0`.
pub fn run_app_sampled(
    profile: BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    spec: SampleSpec,
    intervals: u64,
    threads: usize,
    opts: RunOptions<'_>,
) -> SampledRun {
    assert!(spec.period > 0, "sampling period must be positive");
    assert!(
        spec.detailed_per_window() <= spec.period,
        "detailed window ({} + {}) exceeds the sampling period {}",
        spec.warmup,
        spec.measure,
        spec.period
    );
    let windows = spec.windows(scale);
    let k = intervals.clamp(1, windows);
    // Interval i covers windows [w0(i), w0(i+1)) — contiguous, exhaustive.
    let w0 = |i: u64| windows * i / k;

    // --- Phase 1: the snapshot chain (sequential functional prefix).
    // Interval i's snapshot is the architectural state at its first
    // window's absolute trace offset. The chain is built lazily: a warm
    // store answers every digest without touching `cur`; the first miss
    // advances one functional system from wherever it stands (fresh, or
    // the last offset a build left it at) — interval k−1's functional
    // prefix, exactly.
    let t_prefix = Instant::now();
    let mut blobs: Vec<Arc<Vec<u8>>> = Vec::with_capacity(k as usize);
    let mut cur: Option<FunctionalState> = None;
    for i in 0..k {
        let abs = scale.warmup + w0(i) * spec.period;
        let digest = if abs == scale.warmup {
            warmup_digest(&profile, kind, scale)
        } else {
            interval_digest(&profile, kind, scale, abs)
        };
        let mut build = || {
            let (core, gen) = cur.get_or_insert_with(|| fresh_functional(profile, kind));
            core.warm_run_to(gen, abs);
            save_arch(core, gen)
        };
        let blob = match opts.checkpoints {
            Some(store) => {
                let (blob, hit) = store.get_or_build(digest, build);
                if let Some(w) = opts.wall {
                    let outcome = if hit { "hit" } else { "miss" };
                    w.wall_mark("simchk", &format!("{outcome}/{}@{abs}", profile.name));
                }
                blob
            }
            None => Arc::new(build()),
        };
        blobs.push(blob);
    }
    drop(cur);
    if let Some(w) = opts.wall {
        // The sampling-overhead track: how much wall time the snapshot
        // chain (the part a warm store eliminates) cost this run.
        w.wall_span(
            "sample-prefix",
            &format!("{}/{k}-intervals", profile.name),
            t_prefix.elapsed().as_nanos() as u64,
        );
    }

    // --- Phase 2: detailed interval jobs, fanned out on the pool and
    // stitched back by concatenation (results arrive in job order).
    let t_measure = Instant::now();
    let wall = opts.wall;
    let jobs: Vec<_> = (0..k)
        .map(|i| {
            let blob = Arc::clone(&blobs[i as usize]);
            let (first, last) = (w0(i), w0(i + 1));
            move || run_interval(profile, kind, scale, spec, &blob, first, last, wall)
        })
        .collect();
    let observations: Vec<WindowObs> =
        pool::run_jobs(threads.max(1), jobs).into_iter().flatten().collect();
    if let Some(w) = opts.wall {
        w.wall_span(
            "sample-measure",
            &format!("{}/{windows}-windows", profile.name),
            t_measure.elapsed().as_nanos() as u64,
        );
    }

    let run = assemble_run(profile.name, &observations);
    SampledRun {
        run,
        spec,
        intervals: k,
        total_instructions: scale.measure,
        detailed_instructions: windows * spec.detailed_per_window(),
        windows: observations,
    }
}

/// Seeds one interval from its snapshot bytes, crosses the same drain
/// barrier as every unsampled run (DESIGN.md §11), and executes its
/// windows: functional fast-forward to each period start, a discarded
/// detailed pipeline warm-up, then the observed ops bracketed by counter
/// snapshots.
#[allow(clippy::too_many_arguments)]
fn run_interval(
    profile: BenchProfile,
    kind: &L2Kind,
    scale: Scale,
    spec: SampleSpec,
    blob: &[u8],
    first: u64,
    last: u64,
    wall: Option<&Telemetry>,
) -> Vec<WindowObs> {
    let mut lower = kind.build();
    lower.prefill();
    let mem = CoreMemSystem::micro2003(lower);
    let mut core = OooCore::new(CoreParams::micro2003(), mem);
    let mut gen = TraceGenerator::new(profile, TRACE_SEED);
    let mut d = Decoder::new(blob);
    gen.load_state(&mut d).expect("interval snapshot: generator state");
    core.predictor_mut().load_state(&mut d).expect("interval snapshot: predictor state");
    core.mem_mut().load_l1_state(&mut d).expect("interval snapshot: L1 state");
    core.mem_mut()
        .lower_mut()
        .load_state(&mut d)
        .expect("interval snapshot: lower-cache state");
    d.finish().expect("interval snapshot: trailing bytes");

    // Drain barrier: zero the statistics and rebuild the core at cycle 0
    // over the restored architectural state — identical to the barrier an
    // unsampled run crosses, so a window's counters start clean.
    let (mut mem, mut pred) = core.into_parts();
    mem.drain_timing();
    mem.lower_mut().drain_timing();
    mem.reset_stats();
    mem.lower_mut().reset_stats();
    pred.reset_counters();
    let mut core = OooCore::new(CoreParams::micro2003(), mem);
    core.set_predictor(pred);

    let model = CoreEnergyModel::micro2003();
    let mut out = Vec::with_capacity((last - first) as usize);
    for w in first..last {
        let start = w * spec.period;
        core.warm_run_to(&mut gen, scale.warmup + start);
        core.run(&mut gen, spec.warmup);

        let c0 = core.finish();
        let r0 = core.mem().lower().report();
        let l1_0 = core.mem().l1_accesses();
        let l4_0 = core.mem().lower().main_memory().and_then(|m| m.l4_stats());
        core.run(&mut gen, spec.measure);
        let c1 = core.finish();
        let r1 = core.mem().lower().report();
        let l1_1 = core.mem().l1_accesses();
        let l4_1 = core.mem().lower().main_memory().and_then(|m| m.l4_stats());

        let cd = c1.since(&c0);
        let l4 = l4_1.map(|s| s.minus(&l4_0.unwrap_or_default()));
        let memory_accesses = r1.memory_accesses - r0.memory_accesses;
        let memory = match &l4 {
            Some(s) => energy::l4::memory_energy(s.dram_blocks(), s.tag_probes, s.accesses),
            None => model.memory_energy(memory_accesses),
        };
        let group_hits = r1
            .group_fracs
            .iter()
            .zip(&r0.group_fracs)
            .map(|(f1, f0)| f1 * r1.l2_accesses as f64 - f0 * r0.l2_accesses as f64)
            .collect();
        let l1_accesses = l1_1 - l1_0;
        let energy = EnergyTally {
            core: model.core_energy(&cd),
            l1: model.l1_energy(l1_accesses),
            l2: EnergyNj::new((r1.l2_energy.nj() - r0.l2_energy.nj()).max(0.0)),
            memory,
        };
        if let Some(t) = wall {
            t.wall_mark("sample-window", &format!("{}/w{w}", profile.name));
        }
        out.push(WindowObs {
            index: w,
            start,
            core: cd,
            l1_accesses,
            l2_accesses: r1.l2_accesses - r0.l2_accesses,
            l2_misses: r1.l2_misses - r0.l2_misses,
            dgroup_accesses: r1.dgroup_accesses - r0.dgroup_accesses,
            swaps: r1.swaps - r0.swaps,
            group_hits,
            memory_accesses,
            l4,
            energy,
        });
    }
    out
}

/// Assembles the estimated [`AppRun`] from the summed window deltas.
/// Every sum runs in trace order over the stitched window list, so the
/// f64 fields are bit-identical for any thread count.
fn assemble_run(name: &'static str, windows: &[WindowObs]) -> AppRun {
    let mut core = CoreResult {
        instructions: 0,
        cycles: 0,
        loads: 0,
        stores: 0,
        branches: 0,
        mispredicts: 0,
        int_ops: 0,
        fp_ops: 0,
    };
    let mut l1_accesses = 0u64;
    let mut l2_accesses = 0u64;
    let mut l2_misses = 0u64;
    let mut dgroup_accesses = 0u64;
    let mut swaps = 0u64;
    let mut memory_accesses = 0u64;
    let mut l2_energy_nj = 0.0f64;
    let n_groups = windows.first().map_or(0, |w| w.group_hits.len());
    let mut group_hits = vec![0.0f64; n_groups];
    let mut l4: Option<L4Stats> = None;
    for w in windows {
        core.instructions += w.core.instructions;
        core.cycles += w.core.cycles;
        core.loads += w.core.loads;
        core.stores += w.core.stores;
        core.branches += w.core.branches;
        core.mispredicts += w.core.mispredicts;
        core.int_ops += w.core.int_ops;
        core.fp_ops += w.core.fp_ops;
        l1_accesses += w.l1_accesses;
        l2_accesses += w.l2_accesses;
        l2_misses += w.l2_misses;
        dgroup_accesses += w.dgroup_accesses;
        swaps += w.swaps;
        memory_accesses += w.memory_accesses;
        l2_energy_nj += w.energy.l2.nj();
        for (g, h) in group_hits.iter_mut().zip(&w.group_hits) {
            *g += h;
        }
        if let Some(d) = &w.l4 {
            let mut agg = l4.take().unwrap_or_default();
            agg.accesses += d.accesses;
            agg.hits += d.hits;
            agg.misses += d.misses;
            agg.fills += d.fills;
            agg.dirty_fills += d.dirty_fills;
            agg.writebacks += d.writebacks;
            agg.tag_probes += d.tag_probes;
            agg.tag_cache_hits += d.tag_cache_hits;
            agg.resize_writebacks += d.resize_writebacks;
            agg.resizes += d.resizes;
            l4 = Some(agg);
        }
    }
    let model = CoreEnergyModel::micro2003();
    let memory = match &l4 {
        Some(s) => energy::l4::memory_energy(s.dram_blocks(), s.tag_probes, s.accesses),
        None => model.memory_energy(memory_accesses),
    };
    let l2_energy = EnergyNj::new(l2_energy_nj.max(0.0));
    let energy = EnergyTally {
        core: model.core_energy(&core),
        l1: model.l1_energy(l1_accesses),
        l2: l2_energy,
        memory,
    };
    let acc = l2_accesses.max(1) as f64;
    AppRun {
        name,
        core,
        l2_accesses,
        l2_misses,
        group_fracs: group_hits.iter().map(|h| h / acc).collect(),
        miss_frac: l2_misses as f64 / acc,
        dgroup_accesses,
        swaps,
        l2_energy,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointStore;
    use crate::runner::{run_app, WarmupMode};
    use nurapid::NuRapidConfig;
    use workloads::profiles::by_name;

    fn tiny() -> Scale {
        Scale {
            warmup: 30_000,
            measure: 60_000,
        }
    }

    fn tiny_spec() -> SampleSpec {
        SampleSpec {
            period: 5_000,
            warmup: 200,
            measure: 800,
        }
    }

    #[test]
    fn estimator_matches_hand_computed_stats() {
        let mut e = Estimator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            e.add(x);
        }
        assert_eq!(e.n(), 8);
        assert!((e.mean() - 5.0).abs() < 1e-12);
        // Sample variance of the classic data set is 32/7.
        assert!((e.variance() - 32.0 / 7.0).abs() < 1e-12);
        let ci = 1.96 * (32.0 / 7.0 / 8.0f64).sqrt();
        assert!((e.ci95() - ci).abs() < 1e-12);
        assert!((e.summary().rel_ci() - ci / 5.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_degenerate_cases_are_safe() {
        let e = Estimator::new();
        assert_eq!((e.mean(), e.variance(), e.ci95()), (0.0, 0.0, 0.0));
        let mut one = Estimator::new();
        one.add(3.5);
        assert_eq!((one.mean(), one.ci95()), (3.5, 0.0));
    }

    #[test]
    fn default_spec_keeps_the_speedup_floor() {
        for scale in [Scale::quick(), Scale::full(), Scale::huge()] {
            let spec = SampleSpec::for_scale(scale);
            assert!(spec.detailed_per_window() <= spec.period);
            let detailed = spec.windows(scale) * spec.detailed_per_window();
            assert!(
                scale.measure as f64 / detailed as f64 >= 20.0,
                "scale {scale:?}: only {}x",
                scale.measure / detailed
            );
        }
        // The huge scale caps per-window detail: the reduction is far
        // beyond 20× there, which is what makes 1B instructions tractable.
        let huge = SampleSpec::for_scale(Scale::huge());
        let detailed = huge.windows(Scale::huge()) * huge.detailed_per_window();
        assert!(1_000_000_000 / detailed >= 1_000);
    }

    #[test]
    fn sampled_run_produces_sane_estimates() {
        let app = by_name("galgel").unwrap();
        let kind = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let s = run_app_sampled(app, &kind, tiny(), tiny_spec(), 1, 1, RunOptions::default());
        assert_eq!(s.windows.len(), 12);
        assert_eq!(s.total_instructions, 60_000);
        assert_eq!(s.detailed_instructions, 12 * 1_000);
        assert_eq!(s.run.core.instructions, 12 * 800);
        // tiny_spec times 1_000 of every 5_000 ops: a 5x detailed reduction.
        assert!((s.speedup() - 5.0).abs() < 1e-9, "speedup {}", s.speedup());
        let ipc = s.ipc();
        assert_eq!(ipc.n, 12);
        assert!(ipc.mean > 0.05 && ipc.mean < 8.0, "ipc {}", ipc.mean);
        assert_eq!(s.run.group_fracs.len(), 4);
        let total: f64 = s.run.group_fracs.iter().sum::<f64>() + s.run.miss_frac;
        assert!((total - 1.0).abs() < 1e-6, "fractions sum to 1, got {total}");
        assert!(s.run.energy.total().nj() > 0.0);
    }

    #[test]
    fn sampled_estimates_track_the_full_run() {
        // The sampler's reason to exist: a fraction of the detailed work
        // reproducing the full run's ratio metrics. Tolerances are loose —
        // this is a statistical estimate at a tiny scale — and the
        // committed `--exp sampling` table quantifies the real error.
        let app = by_name("galgel").unwrap();
        let kind = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let scale = Scale {
            warmup: 30_000,
            measure: 240_000,
        };
        let full = run_app(app, &kind, scale);
        let spec = SampleSpec::for_scale(scale);
        let s = run_app_sampled(app, &kind, scale, spec, 1, 1, RunOptions::default());
        let ipc_err = (s.ipc().mean - full.ipc()).abs() / full.ipc();
        assert!(ipc_err < 0.2, "sampled IPC off by {ipc_err:.3}");
        let full_eki = full.energy.total().nj() * 1000.0 / full.core.instructions as f64;
        let eki_err = (s.energy_per_ki().mean - full_eki).abs() / full_eki;
        assert!(eki_err < 0.25, "sampled nJ/KI off by {eki_err:.3}");
        assert!(s.speedup() >= 20.0);
    }

    #[test]
    fn sampled_runs_are_bit_identical_across_threads_and_intervals_and_stores() {
        let app = by_name("parser").unwrap();
        let kind = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let spec = tiny_spec();
        let baseline =
            run_app_sampled(app, &kind, tiny(), spec, 4, 1, RunOptions::default());

        // Thread count is pure wall time.
        for threads in [2, 8] {
            let s = run_app_sampled(app, &kind, tiny(), spec, 4, threads, RunOptions::default());
            assert_eq!(s, baseline, "threads={threads}");
        }

        // Cold and warm checkpoint stores change nothing either; the
        // warm pass answers every interval snapshot from the store.
        let dir = std::env::temp_dir()
            .join(format!("simchk-sampling-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open store");
        let opts = RunOptions {
            checkpoints: Some(&store),
            ..Default::default()
        };
        let cold = run_app_sampled(app, &kind, tiny(), spec, 4, 2, opts);
        assert_eq!(cold, baseline, "cold store");
        assert_eq!(store.misses(), 4, "4 intervals build 4 snapshots");
        let warm = run_app_sampled(app, &kind, tiny(), spec, 4, 8, opts);
        assert_eq!(warm, baseline, "warm store");
        assert_eq!(store.misses(), 4, "warm pass rebuilds nothing");
        assert_eq!(store.hits(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_zero_shares_the_warmup_checkpoint() {
        let app = by_name("galgel").unwrap();
        let kind = L2Kind::NuRapid(NuRapidConfig::micro2003(4));
        let dir = std::env::temp_dir()
            .join(format!("simchk-sampling-share-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open store");
        let opts = RunOptions {
            checkpoints: Some(&store),
            ..Default::default()
        };
        // An ordinary run publishes the warm-up checkpoint...
        let sink = simtel::TelemetrySink::disabled();
        let _ = crate::runner::run_app_opts(app, &kind, tiny(), &sink, 0, opts);
        assert_eq!((store.misses(), store.hits()), (1, 0));
        // ...and the sampled run's interval 0 warm-hits it.
        let _ = run_app_sampled(app, &kind, tiny(), tiny_spec(), 1, 1, opts);
        assert_eq!((store.misses(), store.hits()), (1, 1), "interval 0 must reuse warm-up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_count_is_part_of_the_digest_not_the_result_shape() {
        // Different K values may observe the same windows (the intervals
        // tile the same window list), but they key differently: a K=2
        // artifact must never be served for a K=4 request.
        let app = by_name("galgel").unwrap();
        let kind = L2Kind::Base;
        let a = sampled_digest(&app, &kind, tiny(), tiny_spec(), 2);
        let b = sampled_digest(&app, &kind, tiny(), tiny_spec(), 4);
        assert_ne!(a, b);
        let mut other = tiny_spec();
        other.measure += 1;
        assert_ne!(
            sampled_digest(&app, &kind, tiny(), tiny_spec(), 2),
            sampled_digest(&app, &kind, tiny(), other, 2)
        );
        assert_ne!(
            sampled_digest(&app, &kind, tiny(), tiny_spec(), 2).raw(),
            crate::runner::run_digest(&app, &kind, tiny()).raw(),
            "sampled and unsampled runs must never alias"
        );
    }

    #[test]
    fn sampled_ignores_warmup_mode_by_construction() {
        // Both prefix modes would build identical state; the sampled
        // runner always fast-forwards, so the results match trivially.
        let app = by_name("wupwise").unwrap();
        let kind = L2Kind::Base;
        let ff = run_app_sampled(app, &kind, tiny(), tiny_spec(), 2, 1, RunOptions::default());
        let timed = run_app_sampled(
            app,
            &kind,
            tiny(),
            tiny_spec(),
            2,
            1,
            RunOptions {
                mode: WarmupMode::Timed,
                ..Default::default()
            },
        );
        assert_eq!(ff, timed);
    }

    #[test]
    #[should_panic(expected = "exceeds the sampling period")]
    fn oversized_window_panics() {
        let app = by_name("galgel").unwrap();
        let spec = SampleSpec {
            period: 100,
            warmup: 60,
            measure: 60,
        };
        let _ = run_app_sampled(app, &L2Kind::Base, tiny(), spec, 1, 1, RunOptions::default());
    }
}
