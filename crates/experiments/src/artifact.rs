//! JSON codec for [`AppRun`] — the payload of simsched run artifacts.
//!
//! Every `f64` is stored as its IEEE-754 **bit pattern** (a `u64` field
//! named `*_bits`), because a resumed sweep must reproduce results
//! **bit-identically**: re-parsing a shortest-roundtrip decimal is exact
//! in theory, but bit patterns make the guarantee structural and the
//! manifest greppable for exact equality. A few derived, human-readable
//! fields (`ipc`) are written for manifest readers and ignored by the
//! decoder.

use crate::runner::AppRun;
use cpu::CoreResult;
use energy::EnergyTally;
use simbase::EnergyNj;
use simsched::json::Json;

fn f64_bits(v: f64) -> Json {
    Json::U64(v.to_bits())
}

fn bits_f64(j: &Json) -> Option<f64> {
    j.as_u64().map(f64::from_bits)
}

/// Encodes a run as a JSON object (the artifact payload).
pub fn encode(run: &AppRun) -> Json {
    Json::obj(vec![
        ("app", Json::Str(run.name.to_string())),
        ("ipc", Json::F64((run.ipc() * 1e4).round() / 1e4)),
        (
            "core",
            Json::obj(vec![
                ("instructions", Json::U64(run.core.instructions)),
                ("cycles", Json::U64(run.core.cycles)),
                ("loads", Json::U64(run.core.loads)),
                ("stores", Json::U64(run.core.stores)),
                ("branches", Json::U64(run.core.branches)),
                ("mispredicts", Json::U64(run.core.mispredicts)),
                ("int_ops", Json::U64(run.core.int_ops)),
                ("fp_ops", Json::U64(run.core.fp_ops)),
            ]),
        ),
        ("l2_accesses", Json::U64(run.l2_accesses)),
        ("l2_misses", Json::U64(run.l2_misses)),
        (
            "group_frac_bits",
            Json::Arr(run.group_fracs.iter().map(|&f| f64_bits(f)).collect()),
        ),
        ("miss_frac_bits", f64_bits(run.miss_frac)),
        ("dgroup_accesses", Json::U64(run.dgroup_accesses)),
        ("swaps", Json::U64(run.swaps)),
        ("l2_energy_bits", f64_bits(run.l2_energy.nj())),
        (
            "energy_bits",
            Json::obj(vec![
                ("core", f64_bits(run.energy.core.nj())),
                ("l1", f64_bits(run.energy.l1.nj())),
                ("l2", f64_bits(run.energy.l2.nj())),
                ("memory", f64_bits(run.energy.memory.nj())),
            ]),
        ),
    ])
}

/// Decodes a run from an artifact payload. Returns `None` if any field
/// is missing or ill-typed (the caller then re-simulates), or if the
/// application name is not in the roster.
pub fn decode(j: &Json) -> Option<AppRun> {
    let name = workloads::profiles::by_name(j.field("app")?.as_str()?)?.name;
    let core = j.field("core")?;
    let u = |obj: &Json, k: &str| obj.field(k)?.as_u64();
    let energy = j.field("energy_bits")?;
    let e = |k: &str| -> Option<EnergyNj> {
        let nj = bits_f64(energy.field(k)?)?;
        (nj.is_finite() && nj >= 0.0).then(|| EnergyNj::new(nj))
    };
    Some(AppRun {
        name,
        core: CoreResult {
            instructions: u(core, "instructions")?,
            cycles: u(core, "cycles")?,
            loads: u(core, "loads")?,
            stores: u(core, "stores")?,
            branches: u(core, "branches")?,
            mispredicts: u(core, "mispredicts")?,
            int_ops: u(core, "int_ops")?,
            fp_ops: u(core, "fp_ops")?,
        },
        l2_accesses: u(j, "l2_accesses")?,
        l2_misses: u(j, "l2_misses")?,
        group_fracs: j
            .field("group_frac_bits")?
            .as_arr()?
            .iter()
            .map(bits_f64)
            .collect::<Option<Vec<f64>>>()?,
        miss_frac: bits_f64(j.field("miss_frac_bits")?)?,
        dgroup_accesses: u(j, "dgroup_accesses")?,
        swaps: u(j, "swaps")?,
        l2_energy: {
            let nj = bits_f64(j.field("l2_energy_bits")?)?;
            (nj.is_finite() && nj >= 0.0).then(|| EnergyNj::new(nj))?
        },
        energy: EnergyTally {
            core: e("core")?,
            l1: e("l1")?,
            l2: e("l2")?,
            memory: e("memory")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exps::kind_of;
    use crate::runner::{run_app, Scale};
    use workloads::profiles::by_name;

    fn sample() -> AppRun {
        run_app(
            by_name("galgel").unwrap(),
            &kind_of("nf4"),
            Scale {
                warmup: 20_000,
                measure: 30_000,
            },
        )
    }

    #[test]
    fn encode_decode_is_bit_identical() {
        let run = sample();
        let back = decode(&encode(&run)).expect("decodes");
        // PartialEq on AppRun compares every field, including exact f64s.
        assert_eq!(run, back);
    }

    #[test]
    fn decode_survives_a_disk_roundtrip() {
        let run = sample();
        let line = encode(&run).render();
        let parsed = simsched::json::parse(&line).expect("parses");
        assert_eq!(decode(&parsed).expect("decodes"), run);
    }

    #[test]
    fn corrupt_payloads_decode_to_none() {
        let run = sample();
        let mut j = encode(&run);
        // Unknown app.
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::Str("not-a-benchmark".into());
        }
        assert!(decode(&j).is_none());
        // Missing field.
        let mut j = encode(&run);
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "swaps");
        }
        assert!(decode(&j).is_none());
        // Negative energy bit pattern must not panic EnergyNj::new.
        let mut j = encode(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "l2_energy_bits" {
                    *v = Json::U64((-1.0f64).to_bits());
                }
            }
        }
        assert!(decode(&j).is_none());
    }
}
