//! JSON codec for [`AppRun`] and [`CmpRun`] — the payloads of simsched
//! run artifacts.
//!
//! Every `f64` is stored as its IEEE-754 **bit pattern** (a `u64` field
//! named `*_bits`), because a resumed sweep must reproduce results
//! **bit-identically**: re-parsing a shortest-roundtrip decimal is exact
//! in theory, but bit patterns make the guarantee structural and the
//! manifest greppable for exact equality. A few derived, human-readable
//! fields (`ipc`) are written for manifest readers and ignored by the
//! decoder.
//!
//! The two payload shapes are mutually exclusive by construction: an
//! [`AppRun`] payload carries an `"app"` field and a [`CmpRun`] payload
//! a `"cmp_cores"` field, and each decoder requires its own
//! discriminator, so a digest collision across families (impossible by
//! domain separation anyway) could never decode the wrong type.

use crate::cmp::CmpRun;
use crate::exps::DramRun;
use crate::runner::{AppRun, TransientWindow};
use crate::sampling::{SampleSpec, SampledRun, WindowObs};
use cpu::CoreResult;
use energy::EnergyTally;
use memsys::dramcache::L4Stats;
use memsys::org::OrgReport;
use simbase::EnergyNj;
use simsched::json::Json;

fn f64_bits(v: f64) -> Json {
    Json::U64(v.to_bits())
}

fn bits_f64(j: &Json) -> Option<f64> {
    j.as_u64().map(f64::from_bits)
}

/// Encodes a run as a JSON object (the artifact payload).
pub fn encode(run: &AppRun) -> Json {
    Json::obj(vec![
        ("app", Json::Str(run.name.to_string())),
        ("ipc", Json::F64((run.ipc() * 1e4).round() / 1e4)),
        (
            "core",
            Json::obj(vec![
                ("instructions", Json::U64(run.core.instructions)),
                ("cycles", Json::U64(run.core.cycles)),
                ("loads", Json::U64(run.core.loads)),
                ("stores", Json::U64(run.core.stores)),
                ("branches", Json::U64(run.core.branches)),
                ("mispredicts", Json::U64(run.core.mispredicts)),
                ("int_ops", Json::U64(run.core.int_ops)),
                ("fp_ops", Json::U64(run.core.fp_ops)),
            ]),
        ),
        ("l2_accesses", Json::U64(run.l2_accesses)),
        ("l2_misses", Json::U64(run.l2_misses)),
        (
            "group_frac_bits",
            Json::Arr(run.group_fracs.iter().map(|&f| f64_bits(f)).collect()),
        ),
        ("miss_frac_bits", f64_bits(run.miss_frac)),
        ("dgroup_accesses", Json::U64(run.dgroup_accesses)),
        ("swaps", Json::U64(run.swaps)),
        ("l2_energy_bits", f64_bits(run.l2_energy.nj())),
        (
            "energy_bits",
            Json::obj(vec![
                ("core", f64_bits(run.energy.core.nj())),
                ("l1", f64_bits(run.energy.l1.nj())),
                ("l2", f64_bits(run.energy.l2.nj())),
                ("memory", f64_bits(run.energy.memory.nj())),
            ]),
        ),
    ])
}

/// Decodes a run from an artifact payload. Returns `None` if any field
/// is missing or ill-typed (the caller then re-simulates), or if the
/// application name is not in the roster.
pub fn decode(j: &Json) -> Option<AppRun> {
    let name = workloads::profiles::by_name(j.field("app")?.as_str()?)?.name;
    let core = j.field("core")?;
    let u = |obj: &Json, k: &str| obj.field(k)?.as_u64();
    let energy = j.field("energy_bits")?;
    let e = |k: &str| -> Option<EnergyNj> {
        let nj = bits_f64(energy.field(k)?)?;
        (nj.is_finite() && nj >= 0.0).then(|| EnergyNj::new(nj))
    };
    Some(AppRun {
        name,
        core: CoreResult {
            instructions: u(core, "instructions")?,
            cycles: u(core, "cycles")?,
            loads: u(core, "loads")?,
            stores: u(core, "stores")?,
            branches: u(core, "branches")?,
            mispredicts: u(core, "mispredicts")?,
            int_ops: u(core, "int_ops")?,
            fp_ops: u(core, "fp_ops")?,
        },
        l2_accesses: u(j, "l2_accesses")?,
        l2_misses: u(j, "l2_misses")?,
        group_fracs: j
            .field("group_frac_bits")?
            .as_arr()?
            .iter()
            .map(bits_f64)
            .collect::<Option<Vec<f64>>>()?,
        miss_frac: bits_f64(j.field("miss_frac_bits")?)?,
        dgroup_accesses: u(j, "dgroup_accesses")?,
        swaps: u(j, "swaps")?,
        l2_energy: {
            let nj = bits_f64(j.field("l2_energy_bits")?)?;
            (nj.is_finite() && nj >= 0.0).then(|| EnergyNj::new(nj))?
        },
        energy: EnergyTally {
            core: e("core")?,
            l1: e("l1")?,
            l2: e("l2")?,
            memory: e("memory")?,
        },
    })
}

fn encode_core(c: &CoreResult) -> Json {
    Json::obj(vec![
        ("instructions", Json::U64(c.instructions)),
        ("cycles", Json::U64(c.cycles)),
        ("loads", Json::U64(c.loads)),
        ("stores", Json::U64(c.stores)),
        ("branches", Json::U64(c.branches)),
        ("mispredicts", Json::U64(c.mispredicts)),
        ("int_ops", Json::U64(c.int_ops)),
        ("fp_ops", Json::U64(c.fp_ops)),
    ])
}

fn decode_core(j: &Json) -> Option<CoreResult> {
    let u = |k: &str| j.field(k)?.as_u64();
    Some(CoreResult {
        instructions: u("instructions")?,
        cycles: u("cycles")?,
        loads: u("loads")?,
        stores: u("stores")?,
        branches: u("branches")?,
        mispredicts: u("mispredicts")?,
        int_ops: u("int_ops")?,
        fp_ops: u("fp_ops")?,
    })
}

/// Encodes a CMP run as a JSON object (the artifact payload). The
/// `cmp_cores` field discriminates the family: [`decode`] requires an
/// `"app"` field this payload never has, and [`decode_cmp`] requires
/// `cmp_cores`, so the two codecs can never cross-decode.
pub fn encode_cmp(run: &CmpRun) -> Json {
    let r = &run.result;
    Json::obj(vec![
        ("cmp_cores", Json::U64(u64::from(run.cores))),
        ("config", Json::Str(run.key.to_string())),
        (
            "apps",
            Json::Arr(run.apps.iter().map(|a| Json::Str((*a).to_string())).collect()),
        ),
        ("mean_ipc", Json::F64((run.mean_ipc() * 1e4).round() / 1e4)),
        ("per_core", Json::Arr(r.per_core.iter().map(encode_core).collect())),
        ("l2_accesses", Json::U64(r.report.l2_accesses)),
        ("l2_misses", Json::U64(r.report.l2_misses)),
        (
            "group_frac_bits",
            Json::Arr(r.report.group_fracs.iter().map(|&f| f64_bits(f)).collect()),
        ),
        ("miss_frac_bits", f64_bits(r.report.miss_frac)),
        ("dgroup_accesses", Json::U64(r.report.dgroup_accesses)),
        ("swaps", Json::U64(r.report.swaps)),
        ("memory_accesses", Json::U64(r.report.memory_accesses)),
        ("l2_energy_bits", f64_bits(r.report.l2_energy.nj())),
        ("bank_conflicts", Json::U64(r.bank_conflicts)),
        ("bank_stall_cycles", Json::U64(r.bank_stall_cycles)),
        (
            "per_core_bank_stalls",
            Json::Arr(r.per_core_bank_stalls.iter().map(|&v| Json::U64(v)).collect()),
        ),
        (
            "invalidations",
            Json::Arr(r.invalidations.iter().map(|&v| Json::U64(v)).collect()),
        ),
    ])
}

/// Decodes a CMP run from an artifact payload. Returns `None` if any
/// field is missing or ill-typed, the configuration key is not a CMP
/// key, any application is not in the roster, or the per-core vector
/// lengths disagree with the core count (the caller then re-simulates).
pub fn decode_cmp(j: &Json) -> Option<CmpRun> {
    let cores = u32::try_from(j.field("cmp_cores")?.as_u64()?).ok()?;
    let key = crate::cmp::key_of(j.field("config")?.as_str()?)?;
    let apps = j
        .field("apps")?
        .as_arr()?
        .iter()
        .map(|a| Some(workloads::profiles::by_name(a.as_str()?)?.name))
        .collect::<Option<Vec<&'static str>>>()?;
    let per_core = j
        .field("per_core")?
        .as_arr()?
        .iter()
        .map(decode_core)
        .collect::<Option<Vec<CoreResult>>>()?;
    let u64s = |k: &str| -> Option<Vec<u64>> {
        j.field(k)?.as_arr()?.iter().map(Json::as_u64).collect()
    };
    let per_core_bank_stalls = u64s("per_core_bank_stalls")?;
    let invalidations = u64s("invalidations")?;
    let n = cores as usize;
    if apps.len() != n
        || per_core.len() != n
        || per_core_bank_stalls.len() != n
        || invalidations.len() != n
    {
        return None;
    }
    let u = |k: &str| j.field(k)?.as_u64();
    Some(CmpRun {
        key,
        cores,
        apps,
        result: ::cmp::CmpResult {
            per_core,
            report: OrgReport {
                l2_accesses: u("l2_accesses")?,
                l2_misses: u("l2_misses")?,
                group_fracs: j
                    .field("group_frac_bits")?
                    .as_arr()?
                    .iter()
                    .map(bits_f64)
                    .collect::<Option<Vec<f64>>>()?,
                miss_frac: bits_f64(j.field("miss_frac_bits")?)?,
                dgroup_accesses: u("dgroup_accesses")?,
                swaps: u("swaps")?,
                memory_accesses: u("memory_accesses")?,
                l2_energy: {
                    let nj = bits_f64(j.field("l2_energy_bits")?)?;
                    (nj.is_finite() && nj >= 0.0).then(|| EnergyNj::new(nj))?
                },
            },
            bank_conflicts: u("bank_conflicts")?,
            bank_stall_cycles: u("bank_stall_cycles")?,
            per_core_bank_stalls,
            invalidations,
        },
    })
}

fn encode_window(w: &TransientWindow) -> Json {
    let s = &w.l4;
    Json::obj(vec![
        ("instructions", Json::U64(w.instructions)),
        ("cycles", Json::U64(w.cycles)),
        ("n_banks", Json::U64(u64::from(w.n_banks))),
        ("accesses", Json::U64(s.accesses)),
        ("hits", Json::U64(s.hits)),
        ("misses", Json::U64(s.misses)),
        ("fills", Json::U64(s.fills)),
        ("dirty_fills", Json::U64(s.dirty_fills)),
        ("writebacks", Json::U64(s.writebacks)),
        ("tag_probes", Json::U64(s.tag_probes)),
        ("tag_cache_hits", Json::U64(s.tag_cache_hits)),
        ("resize_writebacks", Json::U64(s.resize_writebacks)),
        ("resizes", Json::U64(s.resizes)),
        ("memory_energy_bits", f64_bits(w.memory_energy.nj())),
    ])
}

fn decode_window(j: &Json) -> Option<TransientWindow> {
    let u = |k: &str| j.field(k)?.as_u64();
    Some(TransientWindow {
        instructions: u("instructions")?,
        cycles: u("cycles")?,
        n_banks: u32::try_from(u("n_banks")?).ok()?,
        l4: L4Stats {
            accesses: u("accesses")?,
            hits: u("hits")?,
            misses: u("misses")?,
            fills: u("fills")?,
            dirty_fills: u("dirty_fills")?,
            writebacks: u("writebacks")?,
            tag_probes: u("tag_probes")?,
            tag_cache_hits: u("tag_cache_hits")?,
            resize_writebacks: u("resize_writebacks")?,
            resizes: u("resizes")?,
        },
        memory_energy: {
            let nj = bits_f64(j.field("memory_energy_bits")?)?;
            (nj.is_finite() && nj >= 0.0).then(|| EnergyNj::new(nj))?
        },
    })
}

/// Encodes a DRAM-transient run as a JSON object (the artifact
/// payload). The `dram_app` field discriminates the family — neither
/// [`decode`] (wants a top-level `"app"`) nor [`decode_cmp`] (wants
/// `"cmp_cores"`) will touch this payload, and [`decode_dram`] requires
/// `dram_app`, so the three codecs can never cross-decode. The
/// whole-run [`AppRun`] nests under `"run"` using the plain codec.
pub fn encode_dram(run: &DramRun) -> Json {
    Json::obj(vec![
        ("dram_app", Json::Str(run.run.name.to_string())),
        ("run", encode(&run.run)),
        (
            "windows",
            Json::Arr(run.windows.iter().map(encode_window).collect()),
        ),
    ])
}

/// Decodes a DRAM-transient run from an artifact payload. Returns
/// `None` if any field is missing or ill-typed, the window list is
/// empty, or the discriminator disagrees with the nested run's
/// application (the caller then re-simulates).
pub fn decode_dram(j: &Json) -> Option<DramRun> {
    let name = j.field("dram_app")?.as_str()?;
    let run = decode(j.field("run")?)?;
    if run.name != name {
        return None;
    }
    let windows = j
        .field("windows")?
        .as_arr()?
        .iter()
        .map(decode_window)
        .collect::<Option<Vec<TransientWindow>>>()?;
    if windows.is_empty() {
        return None;
    }
    Some(DramRun { run, windows })
}

fn encode_l4(s: &L4Stats) -> Json {
    Json::obj(vec![
        ("accesses", Json::U64(s.accesses)),
        ("hits", Json::U64(s.hits)),
        ("misses", Json::U64(s.misses)),
        ("fills", Json::U64(s.fills)),
        ("dirty_fills", Json::U64(s.dirty_fills)),
        ("writebacks", Json::U64(s.writebacks)),
        ("tag_probes", Json::U64(s.tag_probes)),
        ("tag_cache_hits", Json::U64(s.tag_cache_hits)),
        ("resize_writebacks", Json::U64(s.resize_writebacks)),
        ("resizes", Json::U64(s.resizes)),
    ])
}

fn decode_l4(j: &Json) -> Option<L4Stats> {
    let u = |k: &str| j.field(k)?.as_u64();
    Some(L4Stats {
        accesses: u("accesses")?,
        hits: u("hits")?,
        misses: u("misses")?,
        fills: u("fills")?,
        dirty_fills: u("dirty_fills")?,
        writebacks: u("writebacks")?,
        tag_probes: u("tag_probes")?,
        tag_cache_hits: u("tag_cache_hits")?,
        resize_writebacks: u("resize_writebacks")?,
        resizes: u("resizes")?,
    })
}

fn encode_energy(e: &EnergyTally) -> Json {
    Json::obj(vec![
        ("core", f64_bits(e.core.nj())),
        ("l1", f64_bits(e.l1.nj())),
        ("l2", f64_bits(e.l2.nj())),
        ("memory", f64_bits(e.memory.nj())),
    ])
}

fn decode_energy(j: &Json) -> Option<EnergyTally> {
    let e = |k: &str| -> Option<EnergyNj> {
        let nj = bits_f64(j.field(k)?)?;
        (nj.is_finite() && nj >= 0.0).then(|| EnergyNj::new(nj))
    };
    Some(EnergyTally {
        core: e("core")?,
        l1: e("l1")?,
        l2: e("l2")?,
        memory: e("memory")?,
    })
}

fn encode_obs(w: &WindowObs) -> Json {
    let mut pairs = vec![
        ("index", Json::U64(w.index)),
        ("start", Json::U64(w.start)),
        ("core", encode_core(&w.core)),
        ("l1_accesses", Json::U64(w.l1_accesses)),
        ("l2_accesses", Json::U64(w.l2_accesses)),
        ("l2_misses", Json::U64(w.l2_misses)),
        ("dgroup_accesses", Json::U64(w.dgroup_accesses)),
        ("swaps", Json::U64(w.swaps)),
        (
            "group_hit_bits",
            Json::Arr(w.group_hits.iter().map(|&h| f64_bits(h)).collect()),
        ),
        ("memory_accesses", Json::U64(w.memory_accesses)),
        ("energy_bits", encode_energy(&w.energy)),
    ];
    if let Some(s) = &w.l4 {
        pairs.push(("l4", encode_l4(s)));
    }
    Json::obj(pairs)
}

fn decode_obs(j: &Json) -> Option<WindowObs> {
    let u = |k: &str| j.field(k)?.as_u64();
    Some(WindowObs {
        index: u("index")?,
        start: u("start")?,
        core: decode_core(j.field("core")?)?,
        l1_accesses: u("l1_accesses")?,
        l2_accesses: u("l2_accesses")?,
        l2_misses: u("l2_misses")?,
        dgroup_accesses: u("dgroup_accesses")?,
        swaps: u("swaps")?,
        group_hits: j
            .field("group_hit_bits")?
            .as_arr()?
            .iter()
            .map(bits_f64)
            .collect::<Option<Vec<f64>>>()?,
        memory_accesses: u("memory_accesses")?,
        l4: match j.field("l4") {
            Some(l4) => Some(decode_l4(l4)?),
            None => None,
        },
        energy: decode_energy(j.field("energy_bits")?)?,
    })
}

/// Encodes a sampled run as a JSON object (the artifact payload). The
/// `sampled_app` field discriminates the family from the `"app"`,
/// `"cmp_cores"`, and `"dram_app"` payloads; the estimated [`AppRun`]
/// nests under `"run"` using the plain codec and the per-window
/// observations under `"windows"`, so a resumed sampling study
/// reproduces both the estimate and its confidence intervals
/// bit-identically.
pub fn encode_sampled(run: &SampledRun) -> Json {
    Json::obj(vec![
        ("sampled_app", Json::Str(run.run.name.to_string())),
        (
            "spec",
            Json::obj(vec![
                ("period", Json::U64(run.spec.period)),
                ("warmup", Json::U64(run.spec.warmup)),
                ("measure", Json::U64(run.spec.measure)),
            ]),
        ),
        ("intervals", Json::U64(run.intervals)),
        ("total_instructions", Json::U64(run.total_instructions)),
        ("detailed_instructions", Json::U64(run.detailed_instructions)),
        ("run", encode(&run.run)),
        (
            "windows",
            Json::Arr(run.windows.iter().map(encode_obs).collect()),
        ),
    ])
}

/// Decodes a sampled run from an artifact payload. Returns `None` if
/// any field is missing or ill-typed, the window list is empty, or the
/// discriminator disagrees with the nested run's application (the
/// caller then re-simulates).
pub fn decode_sampled(j: &Json) -> Option<SampledRun> {
    let name = j.field("sampled_app")?.as_str()?;
    let run = decode(j.field("run")?)?;
    if run.name != name {
        return None;
    }
    let spec = j.field("spec")?;
    let su = |k: &str| spec.field(k)?.as_u64();
    let windows = j
        .field("windows")?
        .as_arr()?
        .iter()
        .map(decode_obs)
        .collect::<Option<Vec<WindowObs>>>()?;
    if windows.is_empty() {
        return None;
    }
    Some(SampledRun {
        run,
        spec: SampleSpec {
            period: su("period")?,
            warmup: su("warmup")?,
            measure: su("measure")?,
        },
        intervals: j.field("intervals")?.as_u64()?,
        total_instructions: j.field("total_instructions")?.as_u64()?,
        detailed_instructions: j.field("detailed_instructions")?.as_u64()?,
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exps::kind_of;
    use crate::runner::{run_app, Scale};
    use workloads::profiles::by_name;

    fn sample() -> AppRun {
        run_app(
            by_name("galgel").unwrap(),
            &kind_of("nf4"),
            Scale {
                warmup: 20_000,
                measure: 30_000,
            },
        )
    }

    #[test]
    fn encode_decode_is_bit_identical() {
        let run = sample();
        let back = decode(&encode(&run)).expect("decodes");
        // PartialEq on AppRun compares every field, including exact f64s.
        assert_eq!(run, back);
    }

    #[test]
    fn decode_survives_a_disk_roundtrip() {
        let run = sample();
        let line = encode(&run).render();
        let parsed = simsched::json::parse(&line).expect("parses");
        assert_eq!(decode(&parsed).expect("decodes"), run);
    }

    #[test]
    fn corrupt_payloads_decode_to_none() {
        let run = sample();
        let mut j = encode(&run);
        // Unknown app.
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::Str("not-a-benchmark".into());
        }
        assert!(decode(&j).is_none());
        // Missing field.
        let mut j = encode(&run);
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "swaps");
        }
        assert!(decode(&j).is_none());
        // Negative energy bit pattern must not panic EnergyNj::new.
        let mut j = encode(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "l2_energy_bits" {
                    *v = Json::U64((-1.0f64).to_bits());
                }
            }
        }
        assert!(decode(&j).is_none());
    }

    fn cmp_sample() -> crate::cmp::CmpRun {
        crate::cmp::run_cmp_opts(
            "nf4",
            2,
            &kind_of("nf4"),
            Scale {
                warmup: 10_000,
                measure: 16_000,
            },
            &simtel::TelemetrySink::disabled(),
            0,
            crate::runner::RunOptions::default(),
            None,
        )
    }

    #[test]
    fn cmp_encode_decode_is_bit_identical() {
        let run = cmp_sample();
        let line = encode_cmp(&run).render();
        let parsed = simsched::json::parse(&line).expect("parses");
        assert_eq!(decode_cmp(&parsed).expect("decodes"), run);
    }

    #[test]
    fn cmp_and_app_codecs_never_cross_decode() {
        let cmp_run = cmp_sample();
        let app_run = sample();
        assert!(decode(&encode_cmp(&cmp_run)).is_none(), "AppRun decoder rejects CMP");
        assert!(decode_cmp(&encode(&app_run)).is_none(), "CMP decoder rejects AppRun");
    }

    #[test]
    fn corrupt_cmp_payloads_decode_to_none() {
        let run = cmp_sample();
        // Core-count / vector-length mismatch.
        let mut j = encode_cmp(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "cmp_cores" {
                    *v = Json::U64(4);
                }
            }
        }
        assert!(decode_cmp(&j).is_none());
        // Unknown configuration key.
        let mut j = encode_cmp(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "config" {
                    *v = Json::Str("not-a-config".into());
                }
            }
        }
        assert!(decode_cmp(&j).is_none());
        // Missing field.
        let mut j = encode_cmp(&run);
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "bank_conflicts");
        }
        assert!(decode_cmp(&j).is_none());
    }

    fn dram_sample() -> DramRun {
        let scale = Scale {
            warmup: 10_000,
            measure: 16_000,
        };
        let (run, windows) = crate::runner::run_app_transient(
            by_name("galgel").unwrap(),
            &crate::exps::dram_kind(scale),
            scale,
            crate::exps::DRAM_WINDOWS,
            crate::runner::RunOptions::default(),
        );
        DramRun { run, windows }
    }

    #[test]
    fn dram_encode_decode_survives_a_disk_roundtrip() {
        let run = dram_sample();
        let line = encode_dram(&run).render();
        let parsed = simsched::json::parse(&line).expect("parses");
        assert_eq!(decode_dram(&parsed).expect("decodes"), run);
    }

    #[test]
    fn dram_codec_never_cross_decodes() {
        let dram_run = dram_sample();
        let j = encode_dram(&dram_run);
        assert!(decode(&j).is_none(), "AppRun decoder rejects DramRun");
        assert!(decode_cmp(&j).is_none(), "CMP decoder rejects DramRun");
        assert!(decode_dram(&encode(&sample())).is_none(), "DramRun decoder rejects AppRun");
        assert!(
            decode_dram(&encode_cmp(&cmp_sample())).is_none(),
            "DramRun decoder rejects CmpRun"
        );
    }

    fn sampled_sample() -> SampledRun {
        crate::sampling::run_app_sampled(
            by_name("galgel").unwrap(),
            &kind_of("nf4"),
            Scale {
                warmup: 10_000,
                measure: 20_000,
            },
            SampleSpec {
                period: 4_000,
                warmup: 100,
                measure: 400,
            },
            2,
            1,
            crate::runner::RunOptions::default(),
        )
    }

    #[test]
    fn sampled_encode_decode_survives_a_disk_roundtrip() {
        let run = sampled_sample();
        let line = encode_sampled(&run).render();
        let parsed = simsched::json::parse(&line).expect("parses");
        assert_eq!(decode_sampled(&parsed).expect("decodes"), run);
    }

    #[test]
    fn sampled_codec_never_cross_decodes() {
        let s = sampled_sample();
        let j = encode_sampled(&s);
        assert!(decode(&j).is_none(), "AppRun decoder rejects SampledRun");
        assert!(decode_cmp(&j).is_none(), "CMP decoder rejects SampledRun");
        assert!(decode_dram(&j).is_none(), "DramRun decoder rejects SampledRun");
        assert!(
            decode_sampled(&encode(&sample())).is_none(),
            "SampledRun decoder rejects AppRun"
        );
    }

    #[test]
    fn corrupt_sampled_payloads_decode_to_none() {
        let run = sampled_sample();
        // Discriminator disagreeing with the nested run.
        let mut j = encode_sampled(&run);
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::Str("wupwise".into());
        }
        assert!(decode_sampled(&j).is_none());
        // Empty window list.
        let mut j = encode_sampled(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "windows" {
                    *v = Json::Arr(vec![]);
                }
            }
        }
        assert!(decode_sampled(&j).is_none());
        // A window missing a field.
        let mut j = encode_sampled(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "windows" {
                    if let Json::Arr(ws) = v {
                        if let Json::Obj(w) = &mut ws[0] {
                            w.retain(|(k, _)| k != "memory_accesses");
                        }
                    }
                }
            }
        }
        assert!(decode_sampled(&j).is_none());
    }

    #[test]
    fn corrupt_dram_payloads_decode_to_none() {
        let run = dram_sample();
        // Discriminator disagreeing with the nested run.
        let mut j = encode_dram(&run);
        if let Json::Obj(pairs) = &mut j {
            pairs[0].1 = Json::Str("wupwise".into());
        }
        assert!(decode_dram(&j).is_none());
        // Empty window list.
        let mut j = encode_dram(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "windows" {
                    *v = Json::Arr(vec![]);
                }
            }
        }
        assert!(decode_dram(&j).is_none());
        // A window missing one stats field.
        let mut j = encode_dram(&run);
        if let Json::Obj(pairs) = &mut j {
            for (k, v) in pairs.iter_mut() {
                if k == "windows" {
                    if let Json::Arr(ws) = v {
                        if let Json::Obj(w) = &mut ws[0] {
                            w.retain(|(k, _)| k != "resize_writebacks");
                        }
                    }
                }
            }
        }
        assert!(decode_dram(&j).is_none());
    }
}
