//! The CMP experiment: N cores with private L1s sharing one lower-level
//! organization, with per-bank contention and invalidation-lite sharing
//! (DESIGN.md §14).
//!
//! This module is the experiments-layer twin of the single-core
//! [`crate::runner`]: the same digest discipline (a run digest keying
//! the run store and artifacts, a warm-up digest keying the checkpoint
//! store), the same drain-barrier phase structure, the same
//! construction seam ([`crate::runner::L2Kind::build`]) — grown a core
//! dimension through [`::cmp::CmpSystem`]. CMP warm-up is always the
//! functional fast-forward (there is no timed-warm-up oracle for the
//! multi-core front-end; the sharing model is architectural on both
//! paths by construction, see `crates/cmp`).

use crate::report::{f2, pct, rel, TextTable};
use crate::runner::{
    digest_kind_architectural, digest_profile, L2Kind, RunOptions, Scale, TRACE_SEED,
};
use crate::sampling::SampleSpec;
use ::cmp::{CmpConfig, CmpResult, CmpSystem};
use simbase::digest::{Digest, Hasher128};
use simbase::snapshot::{Decoder, Encoder};
use simtel::TelemetrySink;
use std::time::Instant;
use workloads::profiles::{self, BenchProfile};

/// Core counts the `cmp` experiment sweeps by default (the `--cores`
/// flag restricts a run to one of them).
pub const CMP_CORES: &[u32] = &[2, 4, 8];

/// Organizations the `cmp` experiment compares: the conventional base,
/// the flagship NuRAPID configuration, D-NUCA, and compressed NUCA.
pub const CMP_KEYS: &[&str] = &["base", "nf4", "dn-perf", "cnuca"];

/// The per-core application roster: core `i` runs the `i`-th high-load
/// application (cycled), so every core count gets a fixed, documented
/// mix that actually exercises the shared cache.
pub fn cmp_profiles(cores: u32) -> Vec<BenchProfile> {
    let hl: Vec<BenchProfile> = profiles::high_load().collect();
    (0..cores as usize).map(|i| hl[i % hl.len()]).collect()
}

/// Resolves an application name back to its `'static` roster name (the
/// artifact decoder's counterpart of [`BenchProfile::name`]).
fn static_key(name: &str) -> Option<&'static str> {
    CMP_KEYS.iter().copied().find(|&k| k == name)
}

/// The measured results of one CMP scenario: `cores` cores, each running
/// its rostered application, sharing the organization named by `key`.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpRun {
    /// Configuration key (resolvable through [`crate::exps::kind_of`]).
    pub key: &'static str,
    /// Core count.
    pub cores: u32,
    /// Application name per core, in core order.
    pub apps: Vec<&'static str>,
    /// The front-end's measured results.
    pub result: CmpResult,
}

impl CmpRun {
    /// Arithmetic mean of the per-core IPCs.
    pub fn mean_ipc(&self) -> f64 {
        self.result.mean_ipc()
    }

    /// Jain's fairness index over per-core IPCs.
    pub fn fairness(&self) -> f64 {
        self.result.fairness()
    }

    /// Bank-conflict stall cycles per kilo-instruction.
    pub fn bank_stalls_per_ki(&self) -> f64 {
        self.result.bank_stalls_per_ki()
    }

    /// Cross-core L1 invalidations per kilo-instruction.
    pub fn invalidations_per_ki(&self) -> f64 {
        let instr: u64 = self.result.per_core.iter().map(|c| c.instructions).sum();
        1000.0 * self.result.invalidations.iter().sum::<u64>() as f64 / instr.max(1) as f64
    }

    /// Fraction of shared-cache accesses hitting the fastest d-group
    /// (0 for organizations without distance groups).
    pub fn fastest_frac(&self) -> f64 {
        self.result.report.group_fracs.first().copied().unwrap_or(0.0)
    }
}

/// Digest of one CMP job: the full scenario configuration, every
/// per-core profile in core order, the full organization configuration,
/// the budget, and the seed — everything that determines a [`CmpRun`]
/// bit-for-bit. Keys the CMP run store and the on-disk artifacts.
pub fn cmp_run_digest(
    cfg: &CmpConfig,
    apps: &[BenchProfile],
    kind: &L2Kind,
    scale: Scale,
) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-cmp-run-v1");
    h.write_u32(cfg.cores);
    h.write_u32(cfg.shared_milli);
    h.write_u64(cfg.n_banks as u64);
    h.write_u64(cfg.bank.service_cycles);
    h.write_u64(cfg.bank.max_delay);
    h.write_u64(apps.len() as u64);
    for p in apps {
        digest_profile(&mut h, p);
    }
    kind.digest_into(&mut h);
    h.write_u64(scale.warmup);
    h.write_u64(scale.measure);
    h.write_u64(TRACE_SEED);
    h.digest()
}

/// Digest of the warm-up-relevant slice of a CMP job. Core count and
/// the shared-region knob are architectural (they shape the per-core
/// address streams and the sharer map); the bank queue model is
/// timing-only state that never runs on the warm path, so bank count
/// and bandwidth are deliberately excluded — exactly as the single-core
/// digest excludes `ideal` and the D-NUCA search policy.
pub fn cmp_warmup_digest(
    cfg: &CmpConfig,
    apps: &[BenchProfile],
    kind: &L2Kind,
    scale: Scale,
) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-cmp-warmup-v1");
    h.write_u32(cfg.cores);
    h.write_u32(cfg.shared_milli);
    h.write_u64(apps.len() as u64);
    for p in apps {
        digest_profile(&mut h, p);
    }
    digest_kind_architectural(&mut h, kind);
    h.write_u64(scale.warmup);
    h.write_u64(TRACE_SEED);
    h.write_u32(crate::checkpoint::CHECKPOINT_VERSION);
    h.digest()
}

/// Digest of one **sampled** CMP job: the plain [`cmp_run_digest`]
/// under a distinct domain tag plus the sampling regime, so a sampled
/// scenario can never alias its unsampled twin (or a different regime)
/// in the run store or on disk. Sampled CMP runs are never split into
/// intervals (the multi-core trace interleaving is resolved inside one
/// [`CmpSystem`]), so no interval count is folded.
pub fn cmp_sampled_digest(
    cfg: &CmpConfig,
    apps: &[BenchProfile],
    kind: &L2Kind,
    scale: Scale,
    spec: SampleSpec,
) -> Digest {
    let mut h = Hasher128::new();
    h.write_str("nurapid-cmp-sampled-v1");
    let raw = cmp_run_digest(cfg, apps, kind, scale).raw();
    h.write_u64((raw >> 64) as u64);
    h.write_u64(raw as u64);
    spec.digest_into(&mut h);
    h.digest()
}

/// Runs one CMP scenario. The instruction budget is split evenly across
/// cores (`scale.warmup / cores` warm-up and `scale.measure / cores`
/// measured ops per core), so a CMP run costs about as much as a
/// single-core run at the same scale. With a checkpoint store the warm
/// state goes through an encoded blob on both the build and the reuse
/// path, mirroring the single-core runner's cold/warm structural
/// identity.
///
/// With `sample`, the measured phase alternates short detailed windows
/// with functional fast-forward, exactly like the single-core sampled
/// runner — the regime is scaled to the per-core budget (period, window
/// warm-up, and window measure all divide by the core count), the
/// per-window pipeline warm-up runs detailed and stays in the counters
/// (the CMP result has no per-window delta seam to subtract it through;
/// ratio metrics are unaffected beyond the sampling error the regime
/// already carries), and the checkpoint digest is unchanged — sampled
/// and unsampled CMP runs share warm-up checkpoints.
pub fn run_cmp_opts(
    key: &'static str,
    cores: u32,
    kind: &L2Kind,
    scale: Scale,
    sink: &TelemetrySink,
    snap_every: u64,
    opts: RunOptions<'_>,
    sample: Option<SampleSpec>,
) -> CmpRun {
    let cfg = CmpConfig::micro2003(cores);
    let apps = cmp_profiles(cores);
    let per_core_warm = (scale.warmup / u64::from(cores)).max(1);
    let per_core_measure = (scale.measure / u64::from(cores)).max(1);
    let mut sys = CmpSystem::new(cfg, kind.build(), &apps, TRACE_SEED);
    let label = format!("cmp{cores}x/{key}");

    let t_warm = Instant::now();
    match opts.checkpoints {
        Some(store) => {
            let chk = cmp_warmup_digest(&cfg, &apps, kind, scale);
            let (blob, hit) = store.get_or_build(chk, || {
                sys.warm_run(per_core_warm);
                let mut e = Encoder::new();
                sys.save_state(&mut e);
                e.into_bytes()
            });
            let mut d = Decoder::new(&blob);
            sys.load_state(&mut d).expect("cmp checkpoint: state");
            d.finish().expect("cmp checkpoint: trailing bytes");
            if let Some(w) = opts.wall {
                let outcome = if hit { "hit" } else { "miss" };
                w.wall_mark("simchk", &format!("{outcome}/{label}"));
            }
        }
        None => sys.warm_run(per_core_warm),
    }
    if let Some(w) = opts.wall {
        let name = format!("{label}/{per_core_warm}-ops");
        w.wall_span("warmup-cmp", &name, t_warm.elapsed().as_nanos() as u64);
    }

    sys.drain_barrier(sink, snap_every);

    let t_measure = Instant::now();
    match sample {
        None => sys.run(per_core_measure),
        Some(spec) => {
            // The per-core regime: every knob divides by the core count
            // (floored to 1), mirroring the per-core budget split.
            let pc = SampleSpec {
                period: (spec.period / u64::from(cores)).max(1),
                warmup: (spec.warmup / u64::from(cores)).max(1),
                measure: (spec.measure / u64::from(cores)).max(1),
            };
            let detailed = pc.detailed_per_window().min(pc.period);
            let windows = (per_core_measure / pc.period).max(1);
            let mut done = 0;
            for w in 0..windows {
                sys.run(detailed);
                if let Some(t) = opts.wall {
                    t.wall_mark("sample-window", &format!("{label}/w{w}"));
                }
                sys.warm_run(pc.period - detailed);
                done += pc.period;
            }
            // The budget's tail (a partial period) runs functionally.
            sys.warm_run(per_core_measure.saturating_sub(done));
        }
    }
    if let Some(w) = opts.wall {
        w.wall_span("measure", &label, t_measure.elapsed().as_nanos() as u64);
    }
    sys.record_telemetry(sink);
    CmpRun {
        key,
        cores,
        apps: apps.iter().map(|p| p.name).collect(),
        result: sys.finish(),
    }
}

/// The `cmp` experiment table: every core count × organization, with
/// per-core throughput, fairness, hit-distance, and contention columns.
#[derive(Debug, Clone)]
pub struct CmpTable {
    /// One completed scenario per (cores, config) pair, in display order.
    pub rows: Vec<CmpRun>,
}

/// Runs the `cmp` experiment over `cores_list` × [`CMP_KEYS`] on the
/// sweep's worker pool.
pub fn cmp_table(sweep: &crate::exps::Sweep, cores_list: &[u32]) -> CmpTable {
    let jobs: Vec<(u32, &'static str)> = cores_list
        .iter()
        .flat_map(|&c| CMP_KEYS.iter().map(move |&k| (c, k)))
        .collect();
    sweep.prefetch_cmp(&jobs);
    CmpTable {
        rows: jobs.iter().map(|&(c, k)| (*sweep.run_cmp(c, k)).clone()).collect(),
    }
}

impl CmpTable {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "cores",
            "config",
            "IPC/core",
            "fairness",
            "fastest",
            "L2 miss",
            "bank-stall/KI",
            "inv/KI",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.cores.to_string(),
                r.key.to_string(),
                rel(r.mean_ipc()),
                rel(r.fairness()),
                pct(r.fastest_frac()),
                pct(r.result.report.miss_frac),
                f2(r.bank_stalls_per_ki()),
                f2(r.invalidations_per_ki()),
            ]);
        }
        format!(
            "CMP: cores sharing one organization (per-core budget, \
             10% shared region, 32 banks)\n{}",
            t.render()
        )
    }

    /// Machine-readable TSV form.
    pub fn render_tsv(&self) -> String {
        let mut out = String::from(
            "exp\tcores\tconfig\tipc_per_core\tfairness\tfastest_frac\tmiss_frac\
             \tbank_stalls_per_ki\tinv_per_ki\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "cmp\t{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
                r.cores,
                r.key,
                r.mean_ipc(),
                r.fairness(),
                r.fastest_frac(),
                r.result.report.miss_frac,
                r.bank_stalls_per_ki(),
                r.invalidations_per_ki(),
            ));
        }
        out
    }
}

/// Resolves a configuration name from an artifact payload back to its
/// `'static` key, or `None` for a name outside [`CMP_KEYS`] (the caller
/// then re-simulates).
pub(crate) fn key_of(name: &str) -> Option<&'static str> {
    static_key(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointStore;
    use crate::exps::kind_of;

    fn tiny() -> Scale {
        Scale {
            warmup: 24_000,
            measure: 32_000,
        }
    }

    #[test]
    fn profiles_are_fixed_and_high_load() {
        let p2 = cmp_profiles(2);
        let p8 = cmp_profiles(8);
        assert_eq!(p2.len(), 2);
        assert_eq!(p8.len(), 8);
        // The 2-core roster is a prefix of the 8-core roster.
        assert_eq!(p2[0].name, p8[0].name);
        assert_eq!(p2[1].name, p8[1].name);
        let names: Vec<_> = p8.iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup, "8 cores get 8 distinct applications");
    }

    #[test]
    fn run_digest_separates_every_cmp_knob() {
        let kind = kind_of("nf4");
        let cfg = CmpConfig::micro2003(4);
        let apps = cmp_profiles(4);
        let base = cmp_run_digest(&cfg, &apps, &kind, tiny());
        assert_eq!(base, cmp_run_digest(&cfg, &apps, &kind, tiny()), "stable");

        let mut shared = cfg;
        shared.shared_milli = 200;
        let mut banks = cfg;
        banks.n_banks = 16;
        let mut bw = cfg;
        bw.bank.service_cycles += 1;
        let mut bound = cfg;
        bound.bank.max_delay += 1;
        let variants = [
            cmp_run_digest(&CmpConfig::micro2003(8), &cmp_profiles(8), &kind, tiny()),
            cmp_run_digest(&shared, &apps, &kind, tiny()),
            cmp_run_digest(&banks, &apps, &kind, tiny()),
            cmp_run_digest(&bw, &apps, &kind, tiny()),
            cmp_run_digest(&bound, &apps, &kind, tiny()),
            cmp_run_digest(&cfg, &apps, &kind_of("base"), tiny()),
            cmp_run_digest(
                &cfg,
                &apps,
                &kind,
                Scale {
                    warmup: tiny().warmup,
                    measure: tiny().measure + 1,
                },
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} aliased the CMP run digest");
        }
    }

    #[test]
    fn warmup_digest_shares_timing_only_knobs_and_separates_the_rest() {
        let kind = kind_of("nf4");
        let cfg = CmpConfig::micro2003(4);
        let apps = cmp_profiles(4);
        let base = cmp_warmup_digest(&cfg, &apps, &kind, tiny());

        // Bank count and bandwidth are timing-only: one warm checkpoint.
        let mut banks = cfg;
        banks.n_banks = 16;
        banks.bank.max_delay = 8;
        assert_eq!(base, cmp_warmup_digest(&banks, &apps, &kind, tiny()));
        // The `ideal` twin and the D-NUCA policies share too, exactly as
        // in the single-core digest.
        assert_eq!(base, cmp_warmup_digest(&cfg, &apps, &kind_of("id4"), tiny()));
        assert_eq!(
            cmp_warmup_digest(&cfg, &apps, &kind_of("dn-perf"), tiny()),
            cmp_warmup_digest(&cfg, &apps, &kind_of("dn-memo"), tiny()),
        );
        // Measured budget is warm-up-irrelevant.
        let longer = Scale {
            warmup: tiny().warmup,
            measure: tiny().measure + 1,
        };
        assert_eq!(base, cmp_warmup_digest(&cfg, &apps, &kind, longer));

        // Core count and the shared-region knob are architectural.
        let mut shared = cfg;
        shared.shared_milli = 0;
        let variants = [
            cmp_warmup_digest(&CmpConfig::micro2003(2), &cmp_profiles(2), &kind, tiny()),
            cmp_warmup_digest(&shared, &apps, &kind, tiny()),
            cmp_warmup_digest(&cfg, &apps, &kind_of("base"), tiny()),
            crate::runner::warmup_digest(&apps[0], &kind, tiny()),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} aliased the CMP warm-up digest");
        }
    }

    #[test]
    fn cmp_runs_are_deterministic_and_contend_at_eight_cores() {
        let kind = kind_of("nf4");
        let sink = TelemetrySink::disabled();
        let a = run_cmp_opts("nf4", 8, &kind, tiny(), &sink, 0, RunOptions::default(), None);
        let b = run_cmp_opts("nf4", 8, &kind, tiny(), &sink, 0, RunOptions::default(), None);
        assert_eq!(a, b);
        assert!(a.result.bank_conflicts > 0, "8 cores must show bank conflicts");
        assert!(a.bank_stalls_per_ki() > 0.0);
        assert_eq!(a.apps.len(), 8);
    }

    #[test]
    fn sampled_cmp_runs_are_deterministic_and_cheaper() {
        let kind = kind_of("nf4");
        let sink = TelemetrySink::disabled();
        let spec = SampleSpec {
            period: 8_000,
            warmup: 400,
            measure: 1_600,
        };
        let a = run_cmp_opts("nf4", 4, &kind, tiny(), &sink, 0, RunOptions::default(), Some(spec));
        let b = run_cmp_opts("nf4", 4, &kind, tiny(), &sink, 0, RunOptions::default(), Some(spec));
        assert_eq!(a, b, "sampled CMP runs must be deterministic");
        let full = run_cmp_opts("nf4", 4, &kind, tiny(), &sink, 0, RunOptions::default(), None);
        let detailed: u64 = a.result.per_core.iter().map(|c| c.instructions).sum();
        let full_ops: u64 = full.result.per_core.iter().map(|c| c.instructions).sum();
        assert!(
            detailed * 3 < full_ops,
            "sampling must cut detailed ops: {detailed} vs {full_ops}"
        );
        assert_ne!(a, full);
    }

    #[test]
    fn sampled_cmp_digest_separates_regimes() {
        let kind = kind_of("nf4");
        let cfg = CmpConfig::micro2003(4);
        let apps = cmp_profiles(4);
        let spec = SampleSpec {
            period: 8_000,
            warmup: 400,
            measure: 1_600,
        };
        let base = cmp_sampled_digest(&cfg, &apps, &kind, tiny(), spec);
        assert_eq!(base, cmp_sampled_digest(&cfg, &apps, &kind, tiny(), spec), "stable");
        assert_ne!(
            base,
            cmp_run_digest(&cfg, &apps, &kind, tiny()),
            "sampled and unsampled CMP digests must never alias"
        );
        let mut other = spec;
        other.measure += 1;
        assert_ne!(base, cmp_sampled_digest(&cfg, &apps, &kind, tiny(), other));
    }

    #[test]
    fn checkpointed_cmp_runs_are_bit_identical_cold_and_warm() {
        let kind = kind_of("nf4");
        let sink = TelemetrySink::disabled();
        let direct = run_cmp_opts("nf4", 4, &kind, tiny(), &sink, 0, RunOptions::default(), None);

        let dir = std::env::temp_dir()
            .join(format!("simchk-cmp-exp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open checkpoint store");
        let opts = RunOptions {
            checkpoints: Some(&store),
            ..Default::default()
        };
        let cold = run_cmp_opts("nf4", 4, &kind, tiny(), &sink, 0, opts, None);
        let warm = run_cmp_opts("nf4", 4, &kind, tiny(), &sink, 0, opts, None);
        assert_eq!((store.misses(), store.hits()), (1, 1));
        assert_eq!(direct, cold, "cold store changed the CMP result");
        assert_eq!(cold, warm, "warm store changed the CMP result");

        // The ideal twin reuses the nf4 checkpoint (timing-only knob).
        let _id = run_cmp_opts("id4", 4, &kind_of("id4"), tiny(), &sink, 0, opts, None);
        assert_eq!((store.misses(), store.hits()), (1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
