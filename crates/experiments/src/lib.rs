//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 5).
//!
//! Each experiment in [`exps`] assembles the full simulated system — the
//! [`workloads`] trace generators, the [`cpu`] out-of-order core, the
//! [`memsys`] L1s, and one lower-level cache organization
//! ([`memsys::hierarchy::BaseHierarchy`], [`nurapid::NuRapidCache`],
//! [`nurapid::coupled::CoupledCache`], or [`nuca::DnucaCache`]) — runs the
//! paper's 15-application roster through it, and prints the same rows or
//! series the paper reports:
//!
//! | experiment | paper artifact |
//! |---|---|
//! | [`exps::table2`] | Table 2 — per-operation cache energies |
//! | [`exps::table3`] | Table 3 — base IPC and L2 accesses / 1 K instructions |
//! | [`exps::table4`] | Table 4 — per-MB latencies of every organization |
//! | [`exps::fig4`] | Fig. 4 — set-associative vs distance-associative placement |
//! | [`exps::fig5`] | Fig. 5 — demotion-only / next-fastest / fastest distributions |
//! | [`exps::fig6`] | Fig. 6 — performance of the distance-replacement policies |
//! | [`exps::sec531`] | §5.3.1 — random vs true-LRU distance replacement |
//! | [`exps::fig7`] | Fig. 7 — d-group access distribution for 2/4/8 d-groups |
//! | [`exps::fig8`] | Fig. 8 — performance of 2/4/8-d-group NuRAPIDs |
//! | [`exps::fig9`] | Fig. 9 — performance vs D-NUCA (ss-performance) |
//! | [`exps::fig10`] | Fig. 10 (reconstructed) — L2 dynamic energy vs D-NUCA (ss-energy) |
//! | [`exps::fig11`] | Fig. 11 (reconstructed) — processor energy-delay |
//!
//! Runs are scaled down from the paper's 5 B-instruction simulations (see
//! DESIGN.md §3); [`runner::Scale`] picks the instruction budget.

pub mod artifact;
pub mod checkpoint;
pub mod cmp;
pub mod exps;
pub mod report;
pub mod repro;
pub mod runner;
pub mod sampling;

pub use checkpoint::CheckpointStore;
pub use memsys::dramcache::L4Config;
pub use runner::{run_digest, warmup_digest, AppRun, L2Kind, RunOptions, Scale, WarmupMode};
pub use self::cmp::{cmp_run_digest, cmp_warmup_digest, CmpRun};
pub use sampling::{run_app_sampled, SampleSpec, SampledRun, Summary};
