//! On-disk warm-up checkpoint store.
//!
//! A checkpoint is the serialised architectural state at the end of the
//! warm-up phase — trace-generator position, trained branch predictor,
//! L1 contents, and the full lower-level organization — sealed with the
//! [`simbase::snapshot`] envelope (magic, version, checksum) and keyed by
//! [`crate::runner::warmup_digest`]. Because the key covers exactly the
//! inputs that shape warm-up architectural state (and nothing
//! timing-only), configurations that differ only in latency knobs share
//! one checkpoint, and the measured phase restored from a checkpoint is
//! bit-identical to one that warmed up in-process (DESIGN.md §11).
//!
//! The store is single-flight per process (the same [`RunStore`] pattern
//! the scheduler uses for run results): concurrent sweep workers wanting
//! the same checkpoint block on one builder and share the blob. On disk,
//! each checkpoint is one `<digest>.simchk` file written via
//! temp-file-and-rename, so a crashed or concurrent writer can never
//! publish a torn file; unreadable or stale-version files are rebuilt,
//! never trusted.

use simbase::digest::Digest;
use simbase::snapshot;
use simsched::store::RunStore;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version tag of the checkpoint payload layout. Bump whenever any
/// `save_state` encoding or the payload ordering changes; old files then
/// fail [`snapshot::open`] and are transparently rebuilt.
pub const CHECKPOINT_VERSION: u32 = 2;

/// File extension of sealed checkpoints.
pub const CHECKPOINT_EXT: &str = "simchk";

/// A directory of sealed warm-up checkpoints with a single-flight
/// in-process cache in front of it.
pub struct CheckpointStore {
    dir: PathBuf,
    blobs: RunStore<u128, Vec<u8>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            blobs: RunStore::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, digest: Digest) -> PathBuf {
        self.dir.join(format!("{}.{}", digest.hex(), CHECKPOINT_EXT))
    }

    /// Returns the checkpoint payload for `digest`, running `build` only
    /// if no valid checkpoint exists in memory or on disk. A freshly
    /// built payload is sealed and published to disk (best-effort: a
    /// write failure degrades to in-process caching, it does not fail
    /// the run). The returned flag is `true` on a hit.
    pub fn get_or_build(
        &self,
        digest: Digest,
        build: impl FnOnce() -> Vec<u8>,
    ) -> (Arc<Vec<u8>>, bool) {
        let mut built = false;
        let blob = self.blobs.get_or_compute(digest.raw(), || {
            let path = self.path_of(digest);
            if let Ok(bytes) = std::fs::read(&path) {
                if let Ok(payload) = snapshot::open(&bytes, CHECKPOINT_VERSION) {
                    return payload.to_vec();
                }
            }
            built = true;
            let payload = build();
            let sealed = snapshot::seal(CHECKPOINT_VERSION, &payload);
            let tmp = self.dir.join(format!("{}.tmp", digest.hex()));
            if std::fs::write(&tmp, &sealed).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
            payload
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (blob, !built)
    }

    /// Requests served without building (from memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to run warm-up and build the checkpoint.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::digest::Hasher128;

    fn digest(tag: u64) -> Digest {
        let mut h = Hasher128::new();
        h.write_str("checkpoint-test");
        h.write_u64(tag);
        h.digest()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simchk-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn builds_once_then_hits_in_process_and_on_disk() {
        let dir = temp_dir("hits");
        let store = CheckpointStore::open(&dir).expect("open");
        let (a, hit_a) = store.get_or_build(digest(1), || vec![1, 2, 3]);
        assert!(!hit_a, "first request must build");
        let (b, hit_b) = store.get_or_build(digest(1), || panic!("must not rebuild"));
        assert!(hit_b);
        assert_eq!(*a, *b);
        assert_eq!((store.hits(), store.misses()), (1, 1));

        // A second store over the same directory hits from disk.
        let warm = CheckpointStore::open(&dir).expect("reopen");
        let (c, hit_c) = warm.get_or_build(digest(1), || panic!("must load from disk"));
        assert!(hit_c);
        assert_eq!(*c, vec![1, 2, 3]);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_files_are_rebuilt() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).expect("open");
        let path = store.path_of(digest(2));
        std::fs::write(&path, b"not a checkpoint").expect("plant corruption");
        let (blob, hit) = store.get_or_build(digest(2), || vec![9; 64]);
        assert!(!hit, "corrupt file must not count as a hit");
        assert_eq!(*blob, vec![9; 64]);

        // The rebuilt file on disk is now valid.
        let sealed = std::fs::read(&path).expect("rewritten");
        let payload = snapshot::open(&sealed, CHECKPOINT_VERSION).expect("valid seal");
        assert_eq!(payload, &[9; 64][..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_digests_do_not_alias() {
        let dir = temp_dir("alias");
        let store = CheckpointStore::open(&dir).expect("open");
        let (a, _) = store.get_or_build(digest(3), || vec![3]);
        let (b, _) = store.get_or_build(digest(4), || vec![4]);
        assert_ne!(*a, *b);
        assert_eq!(store.misses(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
