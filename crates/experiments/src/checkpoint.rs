//! On-disk warm-up checkpoint store.
//!
//! A checkpoint is the serialised architectural state at the end of the
//! warm-up phase — trace-generator position, trained branch predictor,
//! L1 contents, and the full lower-level organization — sealed with the
//! [`simbase::snapshot`] envelope (magic, version, checksum) and keyed by
//! [`crate::runner::warmup_digest`]. Because the key covers exactly the
//! inputs that shape warm-up architectural state (and nothing
//! timing-only), configurations that differ only in latency knobs share
//! one checkpoint, and the measured phase restored from a checkpoint is
//! bit-identical to one that warmed up in-process (DESIGN.md §11).
//!
//! The store is single-flight per process (the same [`RunStore`] pattern
//! the scheduler uses for run results): concurrent sweep workers wanting
//! the same checkpoint block on one builder and share the blob. On disk,
//! each checkpoint is one `<digest>.simchk` file written via
//! temp-file-and-rename, so a crashed or concurrent writer can never
//! publish a torn file; unreadable or stale-version files are rebuilt,
//! never trusted.

use simbase::digest::Digest;
use simbase::snapshot;
use simsched::store::RunStore;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version tag of the checkpoint payload layout. Bump whenever any
/// `save_state` encoding or the payload ordering changes; old files then
/// fail [`snapshot::open`] and are transparently rebuilt.
pub const CHECKPOINT_VERSION: u32 = 2;

/// File extension of sealed checkpoints.
pub const CHECKPOINT_EXT: &str = "simchk";

/// A directory of sealed warm-up checkpoints with a single-flight
/// in-process cache in front of it.
pub struct CheckpointStore {
    dir: PathBuf,
    blobs: RunStore<u128, Vec<u8>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            blobs: RunStore::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, digest: Digest) -> PathBuf {
        self.dir.join(format!("{}.{}", digest.hex(), CHECKPOINT_EXT))
    }

    /// Returns the checkpoint payload for `digest`, running `build` only
    /// if no valid checkpoint exists in memory or on disk. A freshly
    /// built payload is sealed and published to disk (best-effort: a
    /// write failure degrades to in-process caching, it does not fail
    /// the run). The returned flag is `true` on a hit.
    pub fn get_or_build(
        &self,
        digest: Digest,
        build: impl FnOnce() -> Vec<u8>,
    ) -> (Arc<Vec<u8>>, bool) {
        let mut built = false;
        let blob = self.blobs.get_or_compute(digest.raw(), || {
            let path = self.path_of(digest);
            if let Ok(bytes) = std::fs::read(&path) {
                if let Ok(payload) = snapshot::open(&bytes, CHECKPOINT_VERSION) {
                    return payload.to_vec();
                }
            }
            built = true;
            let payload = build();
            let sealed = snapshot::seal(CHECKPOINT_VERSION, &payload);
            // The temp name must be unique per writer: the in-process
            // store single-flights builders, but two *stores* over the
            // same directory (two daemon processes, a sweep racing a CI
            // job) can build the same digest concurrently, and a shared
            // `<digest>.tmp` would let their writes interleave into one
            // file — publishing a torn checkpoint through the rename.
            // With a pid- and sequence-qualified temp name each writer
            // seals its own file and the last atomic rename wins; both
            // payloads are identical by construction (the digest covers
            // every input that shapes them).
            static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
            let tmp = self.dir.join(format!(
                "{}.{}.{}.tmp",
                digest.hex(),
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            if std::fs::write(&tmp, &sealed).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
            payload
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (blob, !built)
    }

    /// Requests served without building (from memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to run warm-up and build the checkpoint.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::digest::Hasher128;

    fn digest(tag: u64) -> Digest {
        let mut h = Hasher128::new();
        h.write_str("checkpoint-test");
        h.write_u64(tag);
        h.digest()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simchk-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn builds_once_then_hits_in_process_and_on_disk() {
        let dir = temp_dir("hits");
        let store = CheckpointStore::open(&dir).expect("open");
        let (a, hit_a) = store.get_or_build(digest(1), || vec![1, 2, 3]);
        assert!(!hit_a, "first request must build");
        let (b, hit_b) = store.get_or_build(digest(1), || panic!("must not rebuild"));
        assert!(hit_b);
        assert_eq!(*a, *b);
        assert_eq!((store.hits(), store.misses()), (1, 1));

        // A second store over the same directory hits from disk.
        let warm = CheckpointStore::open(&dir).expect("reopen");
        let (c, hit_c) = warm.get_or_build(digest(1), || panic!("must load from disk"));
        assert!(hit_c);
        assert_eq!(*c, vec![1, 2, 3]);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_files_are_rebuilt() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).expect("open");
        let path = store.path_of(digest(2));
        std::fs::write(&path, b"not a checkpoint").expect("plant corruption");
        let (blob, hit) = store.get_or_build(digest(2), || vec![9; 64]);
        assert!(!hit, "corrupt file must not count as a hit");
        assert_eq!(*blob, vec![9; 64]);

        // The rebuilt file on disk is now valid.
        let sealed = std::fs::read(&path).expect("rewritten");
        let payload = snapshot::open(&sealed, CHECKPOINT_VERSION).expect("valid seal");
        assert_eq!(payload, &[9; 64][..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_stores_racing_the_same_digest_publish_a_valid_checkpoint() {
        // Models two daemon/CI processes sharing one checkpoint
        // directory: each process has its own store (so the in-process
        // single-flight does NOT serialize them) and both build the same
        // digest at the same moment. The on-disk protocol must hold:
        // whatever file ends up published has to open as a valid sealed
        // checkpoint with the full payload — a shared temp-file name
        // would let the two writers interleave and publish a torn file.
        let dir = temp_dir("race");
        let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        for round in 0..8u64 {
            let d = digest(100 + round);
            let a = CheckpointStore::open(&dir).expect("open a");
            let b = CheckpointStore::open(&dir).expect("open b");
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|s| {
                for store in [&a, &b] {
                    s.spawn(|| {
                        barrier.wait();
                        let (blob, _) = store.get_or_build(d, || payload.clone());
                        assert_eq!(*blob, payload, "round {round}: payload mismatch");
                    });
                }
            });
            // The published file must be a complete, untorn seal.
            let sealed = std::fs::read(a.path_of(d)).expect("checkpoint published");
            let opened = snapshot::open(&sealed, CHECKPOINT_VERSION)
                .expect("racing writers published a torn checkpoint");
            assert_eq!(opened, &payload[..], "round {round}");
            // No stray temp files left behind by the losing writer...
            let leftovers: Vec<_> = std::fs::read_dir(&dir)
                .expect("readdir")
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
                .collect();
            // (...the loser's rename also succeeds — it just replaces the
            // winner's identical file — so no .tmp may survive.)
            assert!(leftovers.is_empty(), "round {round}: leftover temp files {leftovers:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_digests_do_not_alias() {
        let dir = temp_dir("alias");
        let store = CheckpointStore::open(&dir).expect("open");
        let (a, _) = store.get_or_build(digest(3), || vec![3]);
        let (b, _) = store.get_or_build(digest(4), || vec![4]);
        assert_ne!(*a, *b);
        assert_eq!(store.misses(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
