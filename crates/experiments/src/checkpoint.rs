//! On-disk warm-up checkpoint store.
//!
//! A checkpoint is the serialised architectural state at the end of the
//! warm-up phase — trace-generator position, trained branch predictor,
//! L1 contents, and the full lower-level organization — sealed with the
//! [`simbase::snapshot`] envelope (magic, version, checksum) and keyed by
//! [`crate::runner::warmup_digest`]. Because the key covers exactly the
//! inputs that shape warm-up architectural state (and nothing
//! timing-only), configurations that differ only in latency knobs share
//! one checkpoint, and the measured phase restored from a checkpoint is
//! bit-identical to one that warmed up in-process (DESIGN.md §11).
//!
//! The store is single-flight per process (the same [`RunStore`] pattern
//! the scheduler uses for run results): concurrent sweep workers wanting
//! the same checkpoint block on one builder and share the blob. On disk,
//! each checkpoint is one `<digest>.simchk` file written via
//! temp-file-and-rename, so a crashed or concurrent writer can never
//! publish a torn file; unreadable or stale-version files are rebuilt,
//! never trusted.

use simbase::digest::Digest;
use simbase::snapshot;
use simsched::store::RunStore;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version tag of the checkpoint payload layout. Bump whenever any
/// `save_state` encoding or the payload ordering changes; old files then
/// fail [`snapshot::open`] and are transparently rebuilt.
pub const CHECKPOINT_VERSION: u32 = 2;

/// File extension of sealed checkpoints.
pub const CHECKPOINT_EXT: &str = "simchk";

/// A directory of sealed warm-up checkpoints with a single-flight
/// in-process cache in front of it.
pub struct CheckpointStore {
    dir: PathBuf,
    blobs: RunStore<u128, Vec<u8>>,
    hits: AtomicU64,
    misses: AtomicU64,
    budget: Option<u64>,
    pruned: AtomicU64,
    pins: Mutex<HashMap<u128, usize>>,
}

/// Holds a checkpoint file pinned against [`CheckpointStore::prune_to_budget`]
/// for as long as the guard lives. [`CheckpointStore::get_or_build`] pins
/// internally for its own duration; long-running consumers (an interval
/// chain re-reading its seed blob, a differential harness comparing
/// files on disk) pin explicitly.
pub struct PinGuard<'a> {
    store: &'a CheckpointStore,
    key: u128,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        let mut pins = self.store.pins.lock().expect("pin table poisoned");
        if let Some(n) = pins.get_mut(&self.key) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&self.key);
            }
        }
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            blobs: RunStore::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            budget: None,
            pruned: AtomicU64::new(0),
            pins: Mutex::new(HashMap::new()),
        })
    }

    /// Sets a byte budget for the on-disk store (the `--simchk-prune` /
    /// `SIMCHK_MAX` knob). After every fresh build the store evicts
    /// least-recently-used `.simchk` files until the directory fits the
    /// budget — never touching files a live [`PinGuard`] holds, and
    /// never the in-process cache (an evicted file is simply rebuilt on
    /// the next cold request). `None` (the default) never prunes.
    #[must_use]
    pub fn with_budget(mut self, budget: Option<u64>) -> Self {
        self.budget = budget;
        self
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Pins `digest`'s checkpoint file against pruning for the guard's
    /// lifetime. Pinning is advisory bookkeeping in this process — it
    /// does not create the file or keep other processes from touching it.
    pub fn pin(&self, digest: Digest) -> PinGuard<'_> {
        *self
            .pins
            .lock()
            .expect("pin table poisoned")
            .entry(digest.raw())
            .or_insert(0) += 1;
        PinGuard {
            store: self,
            key: digest.raw(),
        }
    }

    fn path_of(&self, digest: Digest) -> PathBuf {
        self.dir.join(format!("{}.{}", digest.hex(), CHECKPOINT_EXT))
    }

    /// Returns the checkpoint payload for `digest`, running `build` only
    /// if no valid checkpoint exists in memory or on disk. A freshly
    /// built payload is sealed and published to disk (best-effort: a
    /// write failure degrades to in-process caching, it does not fail
    /// the run). The returned flag is `true` on a hit.
    pub fn get_or_build(
        &self,
        digest: Digest,
        build: impl FnOnce() -> Vec<u8>,
    ) -> (Arc<Vec<u8>>, bool) {
        let mut built = false;
        let _pin = self.pin(digest);
        let blob = self.blobs.get_or_compute(digest.raw(), || {
            let path = self.path_of(digest);
            if let Ok(bytes) = std::fs::read(&path) {
                if let Ok(payload) = snapshot::open(&bytes, CHECKPOINT_VERSION) {
                    // Refresh the file's recency so the LRU pruner ranks
                    // live checkpoints above abandoned ones (best-effort;
                    // a read-only directory just loses recency).
                    if let Ok(f) = std::fs::File::options().append(true).open(&path) {
                        let _ = f.set_modified(std::time::SystemTime::now());
                    }
                    return payload.to_vec();
                }
            }
            built = true;
            let payload = build();
            let sealed = snapshot::seal(CHECKPOINT_VERSION, &payload);
            // The temp name must be unique per writer: the in-process
            // store single-flights builders, but two *stores* over the
            // same directory (two daemon processes, a sweep racing a CI
            // job) can build the same digest concurrently, and a shared
            // `<digest>.tmp` would let their writes interleave into one
            // file — publishing a torn checkpoint through the rename.
            // With a pid- and sequence-qualified temp name each writer
            // seals its own file and the last atomic rename wins; both
            // payloads are identical by construction (the digest covers
            // every input that shapes them).
            static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
            let tmp = self.dir.join(format!(
                "{}.{}.{}.tmp",
                digest.hex(),
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            if std::fs::write(&tmp, &sealed).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
            payload
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // A fresh publish is the only event that grows the directory,
            // so it is the only prune trigger needed to hold the budget.
            self.prune_to_budget();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (blob, !built)
    }

    /// Evicts least-recently-used `.simchk` files until the directory
    /// fits the configured budget, skipping files currently pinned (by a
    /// live [`PinGuard`] or an in-flight [`CheckpointStore::get_or_build`]).
    /// Returns the bytes removed; a no-op without a budget. Eviction
    /// order is mtime then file name, so concurrent pruners converge on
    /// the same survivors.
    pub fn prune_to_budget(&self) -> u64 {
        let Some(budget) = self.budget else { return 0 };
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return 0 };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let path = e.path();
                if path.extension().is_none_or(|x| x != CHECKPOINT_EXT) {
                    return None;
                }
                let meta = e.metadata().ok()?;
                Some((meta.modified().ok()?, path, meta.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        if total <= budget {
            return 0;
        }
        files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let pinned: Vec<u128> = {
            let pins = self.pins.lock().expect("pin table poisoned");
            pins.keys().copied().collect()
        };
        let is_pinned = |path: &Path| {
            path.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|hex| u128::from_str_radix(hex, 16).ok())
                .is_some_and(|raw| pinned.contains(&raw))
        };
        let mut freed = 0;
        for (_, path, len) in files {
            if total <= budget {
                break;
            }
            if is_pinned(&path) {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                freed += len;
                self.pruned.fetch_add(1, Ordering::Relaxed);
            }
        }
        freed
    }

    /// Requests served without building (from memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to run warm-up and build the checkpoint.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Checkpoint files evicted by [`CheckpointStore::prune_to_budget`].
    pub fn pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::digest::Hasher128;

    fn digest(tag: u64) -> Digest {
        let mut h = Hasher128::new();
        h.write_str("checkpoint-test");
        h.write_u64(tag);
        h.digest()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simchk-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn builds_once_then_hits_in_process_and_on_disk() {
        let dir = temp_dir("hits");
        let store = CheckpointStore::open(&dir).expect("open");
        let (a, hit_a) = store.get_or_build(digest(1), || vec![1, 2, 3]);
        assert!(!hit_a, "first request must build");
        let (b, hit_b) = store.get_or_build(digest(1), || panic!("must not rebuild"));
        assert!(hit_b);
        assert_eq!(*a, *b);
        assert_eq!((store.hits(), store.misses()), (1, 1));

        // A second store over the same directory hits from disk.
        let warm = CheckpointStore::open(&dir).expect("reopen");
        let (c, hit_c) = warm.get_or_build(digest(1), || panic!("must load from disk"));
        assert!(hit_c);
        assert_eq!(*c, vec![1, 2, 3]);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_stale_files_are_rebuilt() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir).expect("open");
        let path = store.path_of(digest(2));
        std::fs::write(&path, b"not a checkpoint").expect("plant corruption");
        let (blob, hit) = store.get_or_build(digest(2), || vec![9; 64]);
        assert!(!hit, "corrupt file must not count as a hit");
        assert_eq!(*blob, vec![9; 64]);

        // The rebuilt file on disk is now valid.
        let sealed = std::fs::read(&path).expect("rewritten");
        let payload = snapshot::open(&sealed, CHECKPOINT_VERSION).expect("valid seal");
        assert_eq!(payload, &[9; 64][..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_stores_racing_the_same_digest_publish_a_valid_checkpoint() {
        // Models two daemon/CI processes sharing one checkpoint
        // directory: each process has its own store (so the in-process
        // single-flight does NOT serialize them) and both build the same
        // digest at the same moment. The on-disk protocol must hold:
        // whatever file ends up published has to open as a valid sealed
        // checkpoint with the full payload — a shared temp-file name
        // would let the two writers interleave and publish a torn file.
        let dir = temp_dir("race");
        let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        for round in 0..8u64 {
            let d = digest(100 + round);
            let a = CheckpointStore::open(&dir).expect("open a");
            let b = CheckpointStore::open(&dir).expect("open b");
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|s| {
                for store in [&a, &b] {
                    s.spawn(|| {
                        barrier.wait();
                        let (blob, _) = store.get_or_build(d, || payload.clone());
                        assert_eq!(*blob, payload, "round {round}: payload mismatch");
                    });
                }
            });
            // The published file must be a complete, untorn seal.
            let sealed = std::fs::read(a.path_of(d)).expect("checkpoint published");
            let opened = snapshot::open(&sealed, CHECKPOINT_VERSION)
                .expect("racing writers published a torn checkpoint");
            assert_eq!(opened, &payload[..], "round {round}");
            // No stray temp files left behind by the losing writer...
            let leftovers: Vec<_> = std::fs::read_dir(&dir)
                .expect("readdir")
                .filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
                .collect();
            // (...the loser's rename also succeeds — it just replaces the
            // winner's identical file — so no .tmp may survive.)
            assert!(leftovers.is_empty(), "round {round}: leftover temp files {leftovers:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Backdates a checkpoint file so LRU order is deterministic without
    /// sleeping across mtime granularity.
    fn set_age(store: &CheckpointStore, d: Digest, seconds_ago: u64) {
        let f = std::fs::File::options()
            .append(true)
            .open(store.path_of(d))
            .expect("checkpoint file exists");
        let t = std::time::SystemTime::now() - std::time::Duration::from_secs(seconds_ago);
        f.set_modified(t).expect("set mtime");
    }

    #[test]
    fn pruning_evicts_lru_files_beyond_the_budget() {
        let dir = temp_dir("prune");
        // Each sealed file is 64 bytes payload + the 36-byte envelope.
        let plain = CheckpointStore::open(&dir).expect("open");
        for tag in 0..3u64 {
            plain.get_or_build(digest(10 + tag), || vec![tag as u8; 64]);
            set_age(&plain, digest(10 + tag), 300 - tag * 100);
        }
        // An unbudgeted store never prunes.
        assert_eq!(plain.prune_to_budget(), 0);

        // 300 bytes over a 250-byte budget: exactly the oldest file goes.
        let store = CheckpointStore::open(&dir).expect("reopen").with_budget(Some(250));
        let freed = store.prune_to_budget();
        assert_eq!(freed, 100, "one file frees exactly its sealed size");
        assert_eq!(store.pruned(), 1);
        let exists = |tag: u64| store.path_of(digest(10 + tag)).exists();
        assert!(!exists(0), "oldest file must be evicted first");
        assert!(exists(1) && exists(2), "files within budget must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruning_never_evicts_a_pinned_checkpoint() {
        let dir = temp_dir("prune-pin");
        let store = CheckpointStore::open(&dir).expect("open").with_budget(Some(220));
        let held = digest(20);
        store.get_or_build(held, || vec![1; 64]);
        set_age(&store, held, 1_000); // oldest: first in LRU eviction order
        let guard = store.pin(held);

        // Publishing two more files (300 bytes total) forces pruning on
        // each publish; the pinned LRU file must be skipped every time.
        store.get_or_build(digest(21), || vec![2; 64]);
        store.get_or_build(digest(22), || vec![3; 64]);
        store.prune_to_budget();
        assert!(
            store.path_of(held).exists(),
            "a pinned (in-flight) checkpoint must never be pruned"
        );
        assert!(store.pruned() > 0, "unpinned files were eligible");

        // Once the run lets go, the file is ordinary LRU prey again: the
        // next publish that busts the budget evicts it.
        drop(guard);
        set_age(&store, held, 1_000);
        store.get_or_build(digest(23), || vec![4; 64]);
        assert!(!store.path_of(held).exists(), "unpinned LRU file must go");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hits_refresh_recency() {
        let dir = temp_dir("prune-touch");
        let a = CheckpointStore::open(&dir).expect("open");
        a.get_or_build(digest(30), || vec![7; 64]);
        set_age(&a, digest(30), 5_000);
        let before = std::fs::metadata(a.path_of(digest(30))).unwrap().modified().unwrap();
        // A fresh store's disk hit must touch the file forward.
        let b = CheckpointStore::open(&dir).expect("reopen");
        b.get_or_build(digest(30), || panic!("must hit from disk"));
        let after = std::fs::metadata(b.path_of(digest(30))).unwrap().modified().unwrap();
        assert!(after > before, "hit must refresh mtime for LRU ranking");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_digests_do_not_alias() {
        let dir = temp_dir("alias");
        let store = CheckpointStore::open(&dir).expect("open");
        let (a, _) = store.get_or_build(digest(3), || vec![3]);
        let (b, _) = store.get_or_build(digest(4), || vec![4]);
        assert_ne!(*a, *b);
        assert_eq!(store.misses(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
