//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = width[i] + 2);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = width.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a fraction as a percentage, `86.2%`.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats a relative-performance value, `1.059`.
pub fn rel(f: f64) -> String {
    format!("{f:.3}")
}

/// Formats a float with two decimals.
pub fn f2(f: f64) -> String {
    format!("{f:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["app", "ipc"]);
        t.row(vec!["applu", "0.91"]);
        t.row(vec!["wupwise", "1.70"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("applu"));
        // Columns align: "ipc" starts at the same offset everywhere.
        let col = lines[0].find("ipc").unwrap();
        assert_eq!(&lines[2][col..col + 4], "0.91");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.862), "86.2%");
        assert_eq!(rel(1.0591), "1.059");
        assert_eq!(f2(12.345), "12.35");
    }
}
