//! `cmp` — the chip-multiprocessor front-end: N out-of-order cores with
//! private L1s sharing one lower-level [`Organization`] (DESIGN.md §14).
//!
//! The single-core runner owns one `OooCore` over one organization; this
//! crate grows that shape a core dimension while keeping every paper
//! mechanism intact:
//!
//! - **Interleaving** — the measured phase steps whichever core has the
//!   lowest commit clock (ties break toward the lowest core id), one
//!   micro-op at a time, so the shared cache observes a deterministic,
//!   globally time-ordered access stream regardless of host threading.
//! - **Bank contention** — every shared-cache access first occupies its
//!   bank in a [`BankQueues`] history-based queue model; the queue delay
//!   is charged *before* the organization's own geometry latencies (the
//!   access reaches the tag/data arrays only once its bank is free).
//! - **Invalidation-lite sharing** — a per-block sharer bitmask tracks
//!   which cores hold copies of each lower-level block in their private
//!   L1s. A write from one core drops the block from every other
//!   sharer's L1 (no writeback: the writer's update is authoritative).
//!   Sharer tracking is architectural — it runs identically on the
//!   timed and warm-up paths — so CMP warm-ups checkpoint exactly like
//!   single-core ones.
//! - **Single-core degeneracy** — with one core the wrapper is a pure
//!   passthrough: no bank occupancy, no sharer bookkeeping, no stream
//!   offsetting. A 1-core CMP run is bit-identical to the single-core
//!   runner on the same organization.
//!
//! Everything lives on one simulation thread: cores share the
//! organization through `Rc<RefCell<_>>`, and a whole CMP run is one
//! simsched job, so sweep-level parallelism is unchanged.

use cpu::uop::TraceSource;
use cpu::{CoreParams, CoreResult, OooCore};
use memsys::bankq::{BankQueueParams, BankQueues};
use memsys::l1::CoreMemSystem;
use memsys::lower::{LowerCache, LowerOutcome};
use memsys::org::{OrgReport, Organization};
use simbase::snapshot::{Decoder, Encoder, SnapshotError};
use simbase::{AccessKind, BlockAddr, Cycle};
use simtel::{percore, TelemetrySink};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use workloads::{BenchProfile, CoreStream};

/// The largest supported core count (the sharer bitmask is a byte and
/// the per-core metric tables are sized to match).
pub const MAX_CORES: usize = percore::MAX_CORES;

/// Configuration of a CMP scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpConfig {
    /// Number of cores (1–8).
    pub cores: u32,
    /// Per-mille fraction of each core's data accesses folded into the
    /// common shared region (see [`workloads::multi`]).
    pub shared_milli: u32,
    /// Banks in front of the shared organization.
    pub n_banks: usize,
    /// Bandwidth/bound parameters of each bank queue.
    pub bank: BankQueueParams,
}

impl CmpConfig {
    /// The default scenario: `cores` cores, 10% shared data traffic, 32
    /// address-interleaved banks at the paper-era bandwidth.
    pub fn micro2003(cores: u32) -> Self {
        CmpConfig {
            cores,
            shared_milli: 100,
            n_banks: 32,
            bank: BankQueueParams::micro2003(128),
        }
    }
}

/// State shared by every core's lower-cache handle.
struct SharedInner {
    org: Box<dyn Organization>,
    banks: BankQueues,
    /// Per-block sharer bitmask (bit `i` = core `i` may hold L1 copies).
    sharers: HashMap<u64, u8>,
    /// Invalidations produced by writes, drained by the stepping loop.
    pending_inv: VecDeque<(u64, u8)>,
    cores: u32,
    /// Queue-delay cycles charged per core (timing statistic).
    bank_stalls: [u64; MAX_CORES],
}

impl SharedInner {
    /// Updates the sharer bitmask for one access and queues invalidations
    /// for a write that had other sharers. Architectural: called on both
    /// the timed and warm paths.
    fn note_sharing(&mut self, core: usize, block: u64, kind: AccessKind) {
        let bit = 1u8 << core;
        let mask = self.sharers.entry(block).or_insert(0);
        if kind.is_write() {
            let others = *mask & !bit;
            if others != 0 {
                self.pending_inv.push_back((block, others));
            }
            *mask = bit;
        } else {
            *mask |= bit;
        }
    }
}

/// One core's handle onto the shared lower level: implements
/// [`LowerCache`] so an unmodified [`CoreMemSystem`] drives it.
pub struct SharedL2 {
    inner: Rc<RefCell<SharedInner>>,
    core: usize,
}

impl LowerCache for SharedL2 {
    fn access(&mut self, block: BlockAddr, kind: AccessKind, now: Cycle) -> LowerOutcome {
        let mut s = self.inner.borrow_mut();
        let s = &mut *s;
        if s.cores == 1 {
            // Degenerate single-core: bit-identical to the plain runner.
            return s.org.access(block, kind, now);
        }
        s.note_sharing(self.core, block.index(), kind);
        let delay = s.banks.occupy(block, now);
        if delay > 0 {
            s.bank_stalls[self.core] += delay;
        }
        s.org.access(block, kind, now + delay)
    }

    fn accesses(&self) -> u64 {
        self.inner.borrow().org.accesses()
    }

    fn misses(&self) -> u64 {
        self.inner.borrow().org.misses()
    }

    fn block_bytes(&self) -> u64 {
        self.inner.borrow().org.block_bytes()
    }

    fn warm_access(&mut self, block: BlockAddr, kind: AccessKind) {
        let mut s = self.inner.borrow_mut();
        let s = &mut *s;
        if s.cores > 1 {
            s.note_sharing(self.core, block.index(), kind);
        }
        s.org.warm_access(block, kind);
    }
}

/// Measured results of one CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpResult {
    /// Per-core measured results, indexed by core id.
    pub per_core: Vec<CoreResult>,
    /// The shared organization's measured-phase report.
    pub report: OrgReport,
    /// Accesses that found their bank busy.
    pub bank_conflicts: u64,
    /// Queue-delay cycles charged by the bank model, all cores.
    pub bank_stall_cycles: u64,
    /// Queue-delay cycles charged per core.
    pub per_core_bank_stalls: Vec<u64>,
    /// Private-L1 lines dropped per core by other cores' writes.
    pub invalidations: Vec<u64>,
}

impl CmpResult {
    /// Arithmetic mean of the per-core IPCs.
    pub fn mean_ipc(&self) -> f64 {
        self.per_core.iter().map(CoreResult::ipc).sum::<f64>() / self.per_core.len().max(1) as f64
    }

    /// Jain's fairness index over per-core IPCs: 1 when every core makes
    /// equal progress, 1/n when one core starves the rest.
    pub fn fairness(&self) -> f64 {
        let n = self.per_core.len() as f64;
        let sum: f64 = self.per_core.iter().map(CoreResult::ipc).sum();
        let sq_sum: f64 = self.per_core.iter().map(|c| c.ipc() * c.ipc()).sum();
        if sq_sum == 0.0 {
            1.0
        } else {
            sum * sum / (n * sq_sum)
        }
    }

    /// Bank-conflict stall cycles per kilo-instruction (all cores).
    pub fn bank_stalls_per_ki(&self) -> f64 {
        let instr: u64 = self.per_core.iter().map(|c| c.instructions).sum();
        1000.0 * self.bank_stall_cycles as f64 / instr.max(1) as f64
    }
}

/// Snapshot framing: magic + core count guard cross-configuration loads.
const SNAPSHOT_MAGIC: u64 = 0x434d_5053_4e41_5031; // "CMPSNAP1"

/// The multi-core front-end: N cores, N per-core trace streams, one
/// shared organization.
pub struct CmpSystem {
    cfg: CmpConfig,
    shared: Rc<RefCell<SharedInner>>,
    cores: Vec<OooCore<SharedL2>>,
    streams: Vec<CoreStream>,
    /// L1 lines dropped per core by the sharing model (architectural
    /// effect, but counted only where the stepping loop delivers it).
    inv_lines: Vec<u64>,
}

impl CmpSystem {
    /// Builds the system: core `i` runs `profiles[i]` through its own
    /// [`CoreStream`] seeded from `seed`. The organization is prefilled
    /// here (the same construction point as the single-core runner).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is 0, exceeds [`MAX_CORES`], or disagrees
    /// with `profiles.len()`.
    pub fn new(cfg: CmpConfig, mut org: Box<dyn Organization>, profiles: &[BenchProfile], seed: u64) -> Self {
        let n = cfg.cores as usize;
        assert!(n >= 1 && n <= MAX_CORES, "{n} cores unsupported");
        assert_eq!(profiles.len(), n, "one profile per core");
        org.prefill();
        let shared = Rc::new(RefCell::new(SharedInner {
            org,
            banks: BankQueues::new(cfg.n_banks, cfg.bank),
            sharers: HashMap::new(),
            pending_inv: VecDeque::new(),
            cores: cfg.cores,
            bank_stalls: [0; MAX_CORES],
        }));
        let cores = (0..n)
            .map(|i| {
                let lower = SharedL2 {
                    inner: Rc::clone(&shared),
                    core: i,
                };
                OooCore::new(CoreParams::micro2003(), CoreMemSystem::micro2003(lower))
            })
            .collect();
        let streams = profiles
            .iter()
            .enumerate()
            .map(|(i, &p)| CoreStream::new(p, seed, i as u32, cfg.cores, cfg.shared_milli))
            .collect();
        CmpSystem {
            cfg,
            shared,
            cores,
            streams,
            inv_lines: vec![0; n],
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &CmpConfig {
        &self.cfg
    }

    /// Delivers every queued invalidation to the cores still holding the
    /// block. Runs after each stepped op, on the warm and timed paths
    /// alike (the sharing model is architectural).
    fn deliver_invalidations(&mut self) {
        loop {
            let item = self.shared.borrow_mut().pending_inv.pop_front();
            let Some((block, mask)) = item else { break };
            for (j, core) in self.cores.iter_mut().enumerate() {
                if mask & (1 << j) != 0 {
                    let dropped =
                        core.mem_mut().invalidate_lower_block(BlockAddr::from_index(block));
                    self.inv_lines[j] += dropped as u64;
                }
            }
        }
    }

    /// Functional warm-up: `per_core` ops per core, round-robin one op at
    /// a time so sharing effects interleave the same way every run.
    pub fn warm_run(&mut self, per_core: u64) {
        for _ in 0..per_core {
            for i in 0..self.cores.len() {
                let op = self.streams[i].next_op();
                self.cores[i].warm_execute(op);
                self.deliver_invalidations();
            }
        }
    }

    /// The drain barrier (DESIGN.md §11, grown a core dimension): clears
    /// all timing state — per-core MSHRs, the organization's ports, every
    /// bank's busy windows — zeroes all statistics, and rebuilds each
    /// core at cycle zero over its preserved architectural state.
    /// Telemetry attaches here so exports cover the measured window only.
    pub fn drain_barrier(&mut self, sink: &TelemetrySink, snap_every: u64) {
        {
            let mut s = self.shared.borrow_mut();
            let s = &mut *s;
            s.org.drain_timing();
            s.org.reset_stats();
            s.banks.drain();
            s.banks.reset_stats();
            s.bank_stalls = [0; MAX_CORES];
        }
        sink.reset();
        self.shared.borrow_mut().org.set_telemetry(sink, snap_every);
        let old: Vec<OooCore<SharedL2>> = std::mem::take(&mut self.cores);
        for core in old {
            let (mut mem, mut pred) = core.into_parts();
            mem.drain_timing();
            mem.reset_stats();
            pred.reset_counters();
            let mut fresh = OooCore::new(CoreParams::micro2003(), mem);
            fresh.set_predictor(pred);
            self.cores.push(fresh);
        }
        self.inv_lines.iter_mut().for_each(|v| *v = 0);
    }

    /// The measured phase: `per_core` ops per core, always stepping the
    /// core with the lowest commit clock (ties toward the lowest id) so
    /// shared-cache accesses arrive in global time order.
    pub fn run(&mut self, per_core: u64) {
        let n = self.cores.len();
        let mut issued = vec![0u64; n];
        loop {
            let mut pick: Option<usize> = None;
            for i in 0..n {
                if issued[i] < per_core
                    && pick.is_none_or(|p| self.cores[i].cycles() < self.cores[p].cycles())
                {
                    pick = Some(i);
                }
            }
            let Some(i) = pick else { break };
            let op = self.streams[i].next_op();
            self.cores[i].execute(op);
            issued[i] += 1;
            self.deliver_invalidations();
        }
    }

    /// Assembles the measured results.
    pub fn finish(&self) -> CmpResult {
        let s = self.shared.borrow();
        let n = self.cores.len();
        CmpResult {
            per_core: self.cores.iter().map(OooCore::finish).collect(),
            report: s.org.report(),
            bank_conflicts: s.banks.conflicts(),
            bank_stall_cycles: s.banks.stall_cycles(),
            per_core_bank_stalls: s.bank_stalls[..n].to_vec(),
            invalidations: self.inv_lines.clone(),
        }
    }

    /// Emits the per-core counters (`cmp.coreN.*`) and the shared bank /
    /// invalidation totals into `sink`.
    pub fn record_telemetry(&self, sink: &TelemetrySink) {
        if !sink.enabled() {
            return;
        }
        let r = self.finish();
        for (i, core) in r.per_core.iter().enumerate() {
            sink.count(percore::instructions(i), core.instructions);
            sink.count(percore::ipc_milli(i), (core.ipc() * 1000.0) as u64);
            sink.count(percore::bank_stall_cycles(i), r.per_core_bank_stalls[i]);
            sink.count(percore::invalidations(i), r.invalidations[i]);
        }
        sink.count(percore::BANK_CONFLICTS, r.bank_conflicts);
        sink.count(percore::BANK_STALL_CYCLES, r.bank_stall_cycles);
        sink.count(percore::INVALIDATIONS, r.invalidations.iter().sum());
    }

    /// Serializes the architectural state at a quiesced point (typically
    /// the end of warm-up): per-core stream/predictor/L1 state in core
    /// order, then the shared organization, then the sharer map in block
    /// order. Timing state (banks, MSHRs) is never part of a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if invalidations are pending (the caller must drain first).
    pub fn save_state(&self, e: &mut Encoder) {
        let s = self.shared.borrow();
        assert!(s.pending_inv.is_empty(), "snapshot requires a quiesced system");
        e.put_u64(SNAPSHOT_MAGIC);
        e.put_u32(self.cores.len() as u32);
        for i in 0..self.cores.len() {
            self.streams[i].save_state(e);
            self.cores[i].predictor().save_state(e);
            self.cores[i].mem().save_l1_state(e);
        }
        s.org.save_state(e);
        let mut blocks: Vec<(u64, u8)> = s.sharers.iter().map(|(&b, &m)| (b, m)).collect();
        blocks.sort_unstable();
        e.put_u64(blocks.len() as u64);
        for (b, m) in blocks {
            e.put_u64(b);
            e.put_u8(m);
        }
    }

    /// Restores state written by [`CmpSystem::save_state`] into a system
    /// built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a truncated payload, a non-CMP blob,
    /// a core-count mismatch, or an organization mismatch.
    pub fn load_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        if d.u64()? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Malformed("not a CMP snapshot"));
        }
        if d.u32()? as usize != self.cores.len() {
            return Err(SnapshotError::Malformed("CMP core-count mismatch"));
        }
        for i in 0..self.cores.len() {
            self.streams[i].load_state(d)?;
            self.cores[i].predictor_mut().load_state(d)?;
            self.cores[i].mem_mut().load_l1_state(d)?;
        }
        let mut s = self.shared.borrow_mut();
        s.org.load_state(d)?;
        s.sharers.clear();
        let n = d.u64()?;
        for _ in 0..n {
            let block = d.u64()?;
            let mask = d.u8()?;
            s.sharers.insert(block, mask);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu::uop::TraceSource;
    use memsys::hierarchy::BaseHierarchy;
    use workloads::profiles::by_name;
    use workloads::TraceGenerator;

    const SEED: u64 = 0x5eed;

    fn base_org() -> Box<dyn Organization> {
        Box::new(BaseHierarchy::micro2003())
    }

    fn profiles(n: usize) -> Vec<BenchProfile> {
        let roster = ["galgel", "applu", "parser", "apsi", "art", "mcf", "mgrid", "swim"];
        roster[..n].iter().map(|n| by_name(n).expect("rostered")).collect()
    }

    fn run_cmp(cfg: CmpConfig, warm: u64, measure: u64) -> CmpResult {
        let mut sys = CmpSystem::new(cfg, base_org(), &profiles(cfg.cores as usize), SEED);
        sys.warm_run(warm);
        sys.drain_barrier(&TelemetrySink::disabled(), 0);
        sys.run(measure);
        sys.finish()
    }

    #[test]
    fn single_core_cmp_is_bit_identical_to_a_plain_core() {
        // The degenerate 1-core CMP system against the single-core shape
        // the runner uses, both crossing the same drain barrier.
        let profile = by_name("galgel").unwrap();
        let (warm, measure) = (20_000u64, 30_000u64);

        let mut sys = CmpSystem::new(CmpConfig::micro2003(1), base_org(), &[profile], SEED);
        sys.warm_run(warm);
        sys.drain_barrier(&TelemetrySink::disabled(), 0);
        sys.run(measure);
        let cmp_result = sys.finish();

        let mut org = base_org();
        org.prefill();
        let mut gen = TraceGenerator::new(profile, SEED);
        let mut core = OooCore::new(CoreParams::micro2003(), CoreMemSystem::micro2003(org));
        core.warm_run(&mut gen, warm);
        let (mut mem, mut pred) = core.into_parts();
        mem.drain_timing();
        mem.lower_mut().drain_timing();
        mem.reset_stats();
        mem.lower_mut().reset_stats();
        pred.reset_counters();
        let mut core = OooCore::new(CoreParams::micro2003(), mem);
        core.set_predictor(pred);
        for _ in 0..measure {
            let op = gen.next_op();
            core.execute(op);
        }
        assert_eq!(cmp_result.per_core[0], core.finish());
        assert_eq!(cmp_result.report, core.mem().lower().report());
        assert_eq!(cmp_result.bank_conflicts, 0, "1 core never banks-contends");
        assert_eq!(cmp_result.invalidations, vec![0]);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = CmpConfig::micro2003(4);
        let a = run_cmp(cfg, 4_000, 6_000);
        let b = run_cmp(cfg, 4_000, 6_000);
        assert_eq!(a, b);
    }

    #[test]
    fn sharing_produces_cross_core_invalidations() {
        let mut cfg = CmpConfig::micro2003(2);
        cfg.shared_milli = 400;
        let r = run_cmp(cfg, 10_000, 10_000);
        assert!(
            r.invalidations.iter().sum::<u64>() > 0,
            "40% shared write traffic must invalidate: {:?}",
            r.invalidations
        );
    }

    #[test]
    fn fully_private_streams_never_invalidate() {
        let mut cfg = CmpConfig::micro2003(4);
        cfg.shared_milli = 0;
        let r = run_cmp(cfg, 5_000, 5_000);
        assert_eq!(r.invalidations, vec![0; 4]);
    }

    #[test]
    fn eight_cores_contend_for_banks() {
        let r = run_cmp(CmpConfig::micro2003(8), 3_000, 4_000);
        assert!(r.bank_conflicts > 0, "8 cores must conflict");
        assert!(r.bank_stall_cycles > 0);
        assert!(r.bank_stalls_per_ki() > 0.0);
        assert_eq!(r.per_core.len(), 8);
        let per_core_sum: u64 = r.per_core_bank_stalls.iter().sum();
        assert_eq!(per_core_sum, r.bank_stall_cycles, "per-core stalls sum to the total");
    }

    #[test]
    fn fairness_is_one_for_identical_progress() {
        let mut r = run_cmp(CmpConfig::micro2003(2), 500, 500);
        r.per_core = vec![
            CoreResult {
                instructions: 1000,
                cycles: 500,
                loads: 0,
                stores: 0,
                branches: 0,
                mispredicts: 0,
                int_ops: 0,
                fp_ops: 0,
            };
            4
        ];
        assert!((r.fairness() - 1.0).abs() < 1e-12);
        r.per_core[0].cycles = 4000; // one starved core drags the index below 1
        assert!(r.fairness() < 1.0);
    }

    #[test]
    fn snapshot_round_trip_resumes_bit_identically() {
        let cfg = CmpConfig::micro2003(4);
        let mut sys = CmpSystem::new(cfg, base_org(), &profiles(4), SEED);
        sys.warm_run(5_000);
        let mut e = Encoder::new();
        sys.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut twin = CmpSystem::new(cfg, base_org(), &profiles(4), SEED);
        let mut d = Decoder::new(&bytes);
        twin.load_state(&mut d).expect("loads");
        d.finish().expect("no trailing bytes");

        for s in [&mut sys, &mut twin] {
            s.drain_barrier(&TelemetrySink::disabled(), 0);
            s.run(6_000);
        }
        assert_eq!(sys.finish(), twin.finish());
    }

    #[test]
    fn snapshot_rejects_a_different_core_count() {
        let mut sys = CmpSystem::new(CmpConfig::micro2003(2), base_org(), &profiles(2), SEED);
        sys.warm_run(1_000);
        let mut e = Encoder::new();
        sys.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut other = CmpSystem::new(CmpConfig::micro2003(4), base_org(), &profiles(4), SEED);
        let mut d = Decoder::new(&bytes);
        assert!(other.load_state(&mut d).is_err());
    }

    #[test]
    fn telemetry_records_per_core_and_bank_counters() {
        let cfg = CmpConfig::micro2003(2);
        let mut sys = CmpSystem::new(cfg, base_org(), &profiles(2), SEED);
        sys.warm_run(2_000);
        let sink = TelemetrySink::recording(64);
        sys.drain_barrier(&sink, 0);
        sys.run(3_000);
        sys.record_telemetry(&sink);
        let data = sink.drain();
        assert!(data.metrics.counters.contains_key(percore::instructions(0)));
        assert!(data.metrics.counters.contains_key(percore::instructions(1)));
        assert!(data.metrics.counters.contains_key(percore::BANK_STALL_CYCLES));
    }
}
