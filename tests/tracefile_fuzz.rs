//! Randomized coverage for the `workloads::tracefile` binary format:
//! encode→decode→encode round trips must be bit-exact for arbitrary
//! micro-ops, and truncated or corrupt inputs must fail with the right
//! error without corrupting the cursor.
//!
//! The 20-byte record layout is a file format (pinned byte-for-byte by
//! `record_layout_is_pinned` in the crate's unit tests); these properties
//! fuzz the space the pin can't cover: every op-class, every flag
//! combination, extreme addresses, and every cut point an interrupted
//! write could leave behind.

use cpu::uop::{MicroOp, OpClass};
use simbase::Addr;
use simkit::prop::{
    any_bool, any_u64, any_u8, checker, range_u64, range_u8, select, vec_of, Checker,
};
use workloads::tracefile::{read_op, write_op, DecodeTraceError, RecordedTrace, RECORD_BYTES};

fn fprop(name: &str) -> Checker {
    checker(name).cases(64).corpus(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/differential-regressions.txt"
    ))
}

const CLASSES: [OpClass; 7] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::FpAlu,
    OpClass::FpMul,
    OpClass::Load,
    OpClass::Store,
    OpClass::Branch,
];

/// Generator for one arbitrary micro-op: any class, any deps, any flag
/// combination, full-range program counter and memory address.
fn op_gen() -> impl simkit::prop::Gen<Value = MicroOp> {
    struct OpGen<G>(G);
    impl<G: simkit::prop::Gen<Value = ((OpClass, u64, bool, u64), (u8, u8, bool))>>
        simkit::prop::Gen for OpGen<G>
    {
        type Value = MicroOp;
        fn generate(&self, rng: &mut simbase::rng::SimRng) -> MicroOp {
            let ((class, pc, has_addr, addr), (dep1, dep2, taken)) = self.0.generate(rng);
            MicroOp {
                class,
                pc: Addr::new(pc),
                mem_addr: has_addr.then_some(Addr::new(addr)),
                dep1,
                dep2,
                taken,
            }
        }
        fn shrink(&self, v: &MicroOp) -> Vec<MicroOp> {
            // Shrink toward the simplest op: drop the address, clear taken.
            let mut out = Vec::new();
            if v.mem_addr.is_some() {
                out.push(MicroOp {
                    mem_addr: None,
                    ..*v
                });
            }
            if v.taken {
                out.push(MicroOp { taken: false, ..*v });
            }
            out
        }
    }
    OpGen((
        (select(CLASSES.to_vec()), any_u64(), any_bool(), any_u64()),
        (any_u8(), any_u8(), any_bool()),
    ))
}

/// 1. Encode → decode → re-encode is bit-exact, and the decoded ops equal
/// the originals field-for-field, for arbitrary op sequences.
#[test]
fn tracefile_roundtrip_is_bit_exact() {
    let gen = vec_of(op_gen(), 1, 200);
    fprop("tracefile_roundtrip_is_bit_exact").check(&gen, |ops| {
        let mut encoded = Vec::with_capacity(ops.len() * RECORD_BYTES);
        for op in ops {
            write_op(&mut encoded, op);
        }
        assert_eq!(encoded.len(), ops.len() * RECORD_BYTES);
        let mut cursor = encoded.as_slice();
        let mut reencoded = Vec::with_capacity(encoded.len());
        for want in ops {
            let got = read_op(&mut cursor).expect("whole record decodes");
            assert_eq!(&got, want, "decode changed a field");
            write_op(&mut reencoded, &got);
        }
        assert!(cursor.is_empty(), "decode left trailing bytes");
        assert_eq!(reencoded, encoded, "re-encode is not bit-exact");
    });
}

/// 2. A trace cut at any non-record boundary decodes every whole record
/// (identical to the uncut trace), then fails with `Truncated` — and the
/// failed read leaves the cursor untouched, so callers can retry after
/// more bytes arrive.
#[test]
fn tracefile_truncation_always_errors() {
    let gen = (vec_of(op_gen(), 1, 50), any_u64());
    fprop("tracefile_truncation_always_errors").check(&gen, |(ops, cut_seed)| {
        let mut encoded = Vec::new();
        for op in ops {
            write_op(&mut encoded, op);
        }
        // Cut strictly inside the buffer, never on a record boundary.
        let cut = (cut_seed % encoded.len() as u64) as usize;
        let cut = if cut % RECORD_BYTES == 0 { cut + 1 } else { cut };
        let truncated = &encoded[..cut.min(encoded.len() - 1)];
        let whole_records = truncated.len() / RECORD_BYTES;
        let mut cursor = truncated;
        for want in &ops[..whole_records] {
            assert_eq!(&read_op(&mut cursor).expect("whole record"), want);
        }
        let remaining = cursor.len();
        assert!(remaining < RECORD_BYTES);
        assert_eq!(read_op(&mut cursor), Err(DecodeTraceError::Truncated));
        assert_eq!(cursor.len(), remaining, "failed read moved the cursor");
    });
}

/// 3. Corrupting a record's class byte to any unknown code fails with
/// `BadClass` carrying exactly that code; records before the corruption
/// still decode.
#[test]
fn tracefile_bad_class_is_detected() {
    let gen = (
        vec_of(op_gen(), 1, 50),
        range_u64(0, 49),
        range_u8(7, u8::MAX),
    );
    fprop("tracefile_bad_class_is_detected").check(&gen, |(ops, victim, bad_code)| {
        let mut encoded = Vec::new();
        for op in ops {
            write_op(&mut encoded, op);
        }
        let victim = (*victim as usize) % ops.len();
        encoded[victim * RECORD_BYTES] = *bad_code;
        let mut cursor = encoded.as_slice();
        for want in &ops[..victim] {
            assert_eq!(&read_op(&mut cursor).expect("clean prefix"), want);
        }
        assert_eq!(
            read_op(&mut cursor),
            Err(DecodeTraceError::BadClass(*bad_code))
        );
    });
}

/// 4. Replay wrap-around is seamless for any trace length: a
/// `RecordedTrace` produces the same op at position `i` and `i + len`.
#[test]
fn tracefile_replay_wraps_bit_identically() {
    let gen = vec_of(op_gen(), 1, 60);
    fprop("tracefile_replay_wraps_bit_identically").check(&gen, |ops| {
        use cpu::uop::TraceSource;
        let mut encoded = Vec::new();
        for op in ops {
            write_op(&mut encoded, op);
        }
        let mut replay = RecordedTrace::new(encoded);
        assert_eq!(replay.len(), ops.len());
        let first: Vec<MicroOp> = (0..ops.len()).map(|_| replay.next_op()).collect();
        assert_eq!(&first, ops, "first pass diverges from the recorded ops");
        let second: Vec<MicroOp> = (0..ops.len()).map(|_| replay.next_op()).collect();
        assert_eq!(first, second, "wrap-around changed the stream");
    });
}
