//! End-to-end checks of the simsched execution subsystem through the
//! experiment harness: deterministic results regardless of worker-thread
//! count, and bit-exact resume from on-disk run artifacts.

use experiments::exps::{self, Sweep};
use experiments::Scale;
use std::path::PathBuf;
use workloads::profiles::by_name;

fn tiny() -> Scale {
    Scale {
        warmup: 30_000,
        measure: 50_000,
    }
}

fn apps() -> Vec<workloads::profiles::BenchProfile> {
    vec![by_name("art").expect("in roster"), by_name("wupwise").expect("in roster")]
}

const KEYS: [&str; 3] = ["base", "nf4", "dm4"];

/// A process-unique scratch directory under the target dir, removed on
/// drop so test runs don't accumulate state.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("simsched-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn sweep_is_deterministic_across_thread_counts() {
    // Same sweep on 1, 2, and 8 worker threads: every AppRun must be
    // bit-identical and every rendered table byte-identical.
    let render = |s: &Sweep| {
        format!("{}\n{}\n{}", exps::fig5(s).render(), exps::fig8(s).render(), exps::fig10(s).render())
    };
    let runs_of = |s: &Sweep| -> Vec<experiments::runner::AppRun> {
        apps()
            .iter()
            .flat_map(|&a| KEYS.iter().map(move |&k| (*s.run(a, k)).clone()))
            .collect()
    };

    let serial = Sweep::with_apps(tiny(), apps());
    serial.prefetch_all(&KEYS);
    let baseline_runs = runs_of(&serial);
    let baseline_tables = render(&serial);

    for threads in [2usize, 8] {
        let s = Sweep::with_apps(tiny(), apps()).with_threads(threads);
        s.prefetch_all(&KEYS);
        // The parallel prefetch simulated each (app, key) pair exactly
        // once — single-flight, no duplicated work across workers.
        assert_eq!(s.simulated() as usize, apps().len() * KEYS.len());
        assert_eq!(
            runs_of(&s),
            baseline_runs,
            "{threads}-thread AppRuns differ from serial"
        );
        assert_eq!(
            render(&s),
            baseline_tables,
            "{threads}-thread tables differ from serial"
        );
    }
}

#[test]
fn sweep_resumes_from_partial_artifacts() {
    let scratch = Scratch::new("resume");
    let total = apps().len() * KEYS.len();

    // From-scratch reference (no artifacts involved).
    let reference = Sweep::with_apps(tiny(), apps());
    reference.prefetch_all(&KEYS);

    // First pass: simulate only K of the jobs into the artifact dir, as
    // if the sweep were killed partway through.
    let k = 2;
    let partial = Sweep::with_apps(tiny(), apps())
        .with_artifacts(&scratch.0)
        .expect("artifact dir");
    for (app, key) in apps().iter().flat_map(|&a| KEYS.iter().map(move |&k| (a, k))).take(k) {
        partial.run(app, key);
    }
    assert_eq!(partial.simulated() as usize, k);
    drop(partial);

    // Second pass over the same dir: the K artifacted jobs load instead
    // of simulating; only the remainder runs.
    let resumed = Sweep::with_apps(tiny(), apps())
        .with_artifacts(&scratch.0)
        .expect("artifact dir");
    resumed.prefetch_all(&KEYS);
    assert_eq!(resumed.resumed() as usize, k, "artifacted jobs should load, not simulate");
    assert_eq!(resumed.simulated() as usize, total - k);

    // And the resumed results are bit-identical to the from-scratch ones.
    for &app in &apps() {
        for &key in &KEYS {
            assert_eq!(*resumed.run(app, key), *reference.run(app, key), "{} {key}", app.name);
        }
    }

    // Third pass: everything comes from artifacts, nothing simulates.
    let cold = Sweep::with_apps(tiny(), apps())
        .with_artifacts(&scratch.0)
        .expect("artifact dir");
    cold.prefetch_all(&KEYS);
    assert_eq!(cold.simulated(), 0, "fully-artifacted sweep must not re-simulate");
    assert_eq!(cold.resumed() as usize, total);
}

#[test]
fn artifacts_key_on_config_not_label() {
    // A run written at one scale must not be picked up by a sweep at a
    // different scale even though apps and keys match: the digest covers
    // the full configuration.
    let scratch = Scratch::new("digest");
    let one = Sweep::with_apps(tiny(), apps()).with_artifacts(&scratch.0).expect("dir");
    one.run(apps()[0], "base");
    assert_eq!(one.simulated(), 1);
    drop(one);

    let other_scale = Scale {
        warmup: 30_000,
        measure: 50_001,
    };
    let two = Sweep::with_apps(other_scale, apps()).with_artifacts(&scratch.0).expect("dir");
    two.run(apps()[0], "base");
    assert_eq!(two.resumed(), 0, "different scale must miss the artifact");
    assert_eq!(two.simulated(), 1);
}
