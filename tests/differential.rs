//! Differential properties: the flat-arena hot path vs the naive oracles.
//!
//! Each optimized structure in the per-access core ships with a reference
//! implementation (`memsys::naive`, `nurapid::naive`, `nuca::naive`) that
//! preserves the original, obviously-correct formulation: `Vec`-of-structs
//! entries, `Vec`-backed LRU orders, div/mod index math, per-access
//! allocation. These properties drive both sides with identical randomized
//! streams and require *bit-identical* observable behaviour — every return
//! value, every latency, every counter — not just statistical agreement.
//!
//! Failures shrink to a minimal counterexample and are appended to
//! `tests/differential-regressions.txt`, which is replayed first on every
//! run.

use memsys::dramcache::{naive::NaiveL4, L4Config, L4DramCache};
use memsys::memory::MainMemory;
use memsys::naive::{NaiveLru, NaiveSetAssocCache};
use memsys::packed_lru::LruTable;
use memsys::replacement::PolicyKind;
use memsys::setassoc::SetAssocCache;
use nuca::naive::NaiveDnucaCache;
use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::naive::{NaiveNuRapidCache, NaivePortSchedule, NaiveTagArray};
use nurapid::port::PortSchedule;
use nurapid::tag::{FramePtr, TagArray, TagRef};
use nurapid::{DistanceVictimPolicy, NuRapidCache, NuRapidConfig, PromotionPolicy};
use simbase::rng::SimRng;
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simkit::prop::{
    any_bool, any_u64, checker, range_u32, range_u64, range_u8, select, vec_of, Checker, VecGen,
};

/// Replays the differential regression corpus before the random sweep.
fn dprop(name: &str) -> Checker {
    checker(name).cases(64).corpus(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/differential-regressions.txt"
    ))
}

/// A random access trace: (block index, is_write) pairs over a bounded
/// footprint.
fn trace(max_block: u64) -> VecGen<(simkit::prop::U64Range, simkit::prop::AnyBool)> {
    vec_of((range_u64(0, max_block), any_bool()), 1, 400)
}

fn small_config(n_dgroups: usize) -> NuRapidConfig {
    let mut c = NuRapidConfig::micro2003(n_dgroups);
    c.capacity = Capacity::from_mib(1);
    c.assoc = 4;
    c
}

fn kind_of(w: bool) -> AccessKind {
    if w {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

/// 1. The packed-u64 LRU table is indistinguishable from the naive
/// `Vec`-backed recency order: same victim after every touch, same full
/// way order and positions at the end — across both the nibble-packed
/// (assoc ≤ 16) and wide representations.
#[test]
fn packed_lru_matches_naive_lru() {
    let gen = (
        range_u32(1, 24),
        range_u64(1, 64),
        vec_of((range_u64(0, 63), range_u8(0, 31)), 1, 300),
    );
    dprop("packed_lru_matches_naive_lru").check(&gen, |(assoc, sets, ops)| {
        let (assoc, sets) = (*assoc, *sets as usize);
        let mut fast = LruTable::new(sets, assoc);
        let mut naive = NaiveLru::new(sets, assoc);
        for &(s, w) in ops {
            let set = s as usize % sets;
            let way = w as u32 % assoc;
            fast.touch(set, way);
            naive.touch(set, way);
            assert_eq!(fast.victim(set), naive.victim(set), "victim after touch");
        }
        for set in 0..sets {
            for pos in 0..assoc as usize {
                assert_eq!(fast.way_at(set, pos), naive.way_at(set, pos));
            }
            for way in 0..assoc {
                assert_eq!(fast.position_of(set, way), naive.position_of(set, way));
            }
        }
    });
}

/// 2. The struct-of-arrays set-associative directory agrees with the
/// naive array-of-structs one on every probe, access, fill (including the
/// eviction it reports), and invalidation, for every replacement policy.
#[test]
fn setassoc_matches_naive() {
    let gen = (
        select(vec![PolicyKind::Lru, PolicyKind::TreePlru, PolicyKind::Random]),
        any_u64(),
        trace(4_096),
    );
    dprop("setassoc_matches_naive").check(&gen, |(policy, seed, ops)| {
        let cap = Capacity::from_kib(64); // 1024 blocks, 256 sets at 4-way
        let mut fast = SetAssocCache::new(cap, 64, 4, *policy, SimRng::seeded(*seed));
        let mut naive = NaiveSetAssocCache::new(cap, 64, 4, *policy, SimRng::seeded(*seed));
        for (i, &(b, w)) in ops.iter().enumerate() {
            let block = BlockAddr::from_index(b);
            assert_eq!(fast.probe(block), naive.probe(block), "probe of {block}");
            let looked = fast.access(block, kind_of(w));
            assert_eq!(looked, naive.access(block, kind_of(w)), "access of {block}");
            if !looked.is_hit() {
                assert_eq!(fast.fill(block, w), naive.fill(block, w), "fill of {block}");
            }
            if i % 7 == 3 {
                let victim = BlockAddr::from_index(b ^ 1);
                assert_eq!(
                    fast.invalidate(victim),
                    naive.invalidate(victim),
                    "invalidate of {victim}"
                );
            }
        }
        assert_eq!(fast.occupancy(), naive.occupancy());
    });
}

/// 3. The flat-meta tag array (packed valid/dirty/pointer words) matches
/// the naive entry-struct array: identical lookups, identical allocation
/// targets, and identical evictions under LRU pressure.
#[test]
fn tag_array_matches_naive() {
    let gen = (select(vec![2u32, 4, 8]), trace(2_048));
    dprop("tag_array_matches_naive").check(&gen, |(assoc, ops)| {
        let mut fast = TagArray::new(64, *assoc);
        let mut naive = NaiveTagArray::new(64, *assoc);
        for &(b, w) in ops {
            let block = BlockAddr::from_index(b);
            let looked = fast.access(block, kind_of(w));
            assert_eq!(looked, naive.access(block, kind_of(w)), "access of {block}");
            assert_eq!(fast.probe(block), naive.probe(block), "probe of {block}");
            if matches!(looked, nurapid::tag::TagLookup::Miss) {
                let ptr = FramePtr {
                    group: (b % 4) as u8,
                    frame: (b % 1_024) as u32,
                };
                assert_eq!(
                    fast.allocate(block, ptr, w),
                    naive.allocate(block, ptr, w),
                    "allocate of {block}"
                );
            }
        }
        assert_eq!(fast.occupancy(), naive.occupancy());
        for set in 0..64u32 {
            for way in 0..*assoc as u8 {
                let r = TagRef { set, way };
                assert_eq!(fast.block_at(r), naive.block_at(r));
                if fast.block_at(r).is_some() {
                    assert_eq!(fast.ptr_of(r), naive.ptr_of(r));
                }
            }
        }
    });
}

/// 4. The flat port schedule (moving-head buffer + binary-search skip)
/// grants exactly the same start times as the naive `VecDeque` scan on
/// quasi-monotonic request streams, including zero-length reservations.
#[test]
fn port_schedule_matches_naive() {
    let gen = vec_of((range_u64(0, 300), range_u64(0, 40)), 1, 400);
    dprop("port_schedule_matches_naive").check(&gen, |ops| {
        let mut fast = PortSchedule::new();
        let mut naive = NaivePortSchedule::new();
        let mut now = 0u64;
        for &(advance, dur) in ops {
            now += advance;
            let at = Cycle::new(now);
            assert_eq!(
                fast.reserve(at, dur),
                naive.reserve(at, dur),
                "reserve at {now} for {dur}"
            );
            assert_eq!(fast.next_free(at), naive.next_free(at), "next_free at {now}");
        }
    });
}

/// 5. The full flat-arena NuRAPID cache is bit-identical to the naive
/// oracle: every access returns the same hit/miss, latency, and completion
/// time, and the final stats block compares equal field-for-field — across
/// every promotion policy, distance-victim policy, and d-group count.
#[test]
fn nurapid_flat_arena_matches_naive_oracle() {
    let gen = (
        trace(30_000),
        select(vec![2usize, 4, 8]),
        select(vec![
            PromotionPolicy::DemotionOnly,
            PromotionPolicy::NextFastest,
            PromotionPolicy::Fastest,
        ]),
        select(vec![
            DistanceVictimPolicy::Random,
            DistanceVictimPolicy::Lru,
            DistanceVictimPolicy::ClockApprox,
        ]),
        any_bool(),
    );
    dprop("nurapid_flat_arena_matches_naive_oracle").check(
        &gen,
        |(ops, n_dgroups, promo, victim, prefill)| {
            let cfg = small_config(*n_dgroups)
                .with_promotion(*promo)
                .with_distance_victim(*victim);
            let mut fast = NuRapidCache::new(cfg.clone());
            let mut naive = NaiveNuRapidCache::new(cfg);
            if *prefill {
                fast.prefill();
                naive.prefill();
            }
            let mut t = Cycle::ZERO;
            for &(b, w) in ops {
                let block = BlockAddr::from_index(b);
                let out = fast.access_block(block, kind_of(w), t);
                assert_eq!(
                    out,
                    naive.access_block(block, kind_of(w), t),
                    "outcome of {block} at {t}"
                );
                t = out.complete_at + 1;
            }
            fast.check_invariants();
            assert_eq!(fast.stats(), naive.stats(), "final stats diverged");
            assert_eq!(fast.memory_accesses(), naive.memory_accesses());
        },
    );
}

/// 6. The struct-of-arrays D-NUCA cache (packed smart-search bytes, bank
/// lookup table, branchless LRU scan) is bit-identical to the naive
/// oracle under all three search policies.
#[test]
fn dnuca_flat_arena_matches_naive_oracle() {
    let gen = (
        trace(200_000),
        select(vec![
            SearchPolicy::SsPerformance,
            SearchPolicy::SsEnergy,
            SearchPolicy::WayMemo,
        ]),
        any_bool(),
    );
    dprop("dnuca_flat_arena_matches_naive_oracle").check(&gen, |(ops, policy, prefill)| {
        let cfg = DnucaConfig::micro2003(*policy);
        let mut fast = DnucaCache::new(cfg.clone());
        let mut naive = NaiveDnucaCache::new(cfg);
        if *prefill {
            fast.prefill();
            naive.prefill();
        }
        let mut t = Cycle::ZERO;
        for &(b, w) in ops {
            let block = BlockAddr::from_index(b);
            let out = fast.access_block(block, kind_of(w), t);
            assert_eq!(
                out,
                naive.access_block(block, kind_of(w), t),
                "outcome of {block} at {t}"
            );
            t = out.complete_at + 1;
        }
        assert_eq!(fast.stats(), naive.stats(), "final stats diverged");
        assert_eq!(fast.memory_accesses(), naive.memory_accesses());
    });
}

/// 7. The compressed-NUCA cache (half-frame fast ways, address-seeded
/// compressibility, distance-associative promotion, decompression
/// latency) is bit-identical to its naive oracle, including the warm
/// functional path interleaved with timed accesses.
#[test]
fn cnuca_matches_naive_oracle() {
    let gen = (trace(200_000), any_bool(), any_u64());
    dprop("cnuca_matches_naive_oracle").check(&gen, |(ops, prefill, seed)| {
        let mut cfg = nuca::CnucaConfig::micro2003();
        // Vary the architectural seed so the compressibility partition
        // itself is exercised, not one fixed classification.
        cfg.comp_seed = *seed;
        let mut fast = nuca::CompressedNucaCache::new(cfg);
        let mut naive = nuca::naive::NaiveCnucaCache::new(cfg);
        if *prefill {
            fast.prefill();
            naive.prefill();
        }
        let mut t = Cycle::ZERO;
        for (i, &(b, w)) in ops.iter().enumerate() {
            let block = BlockAddr::from_index(b);
            if i % 11 == 5 {
                // The warm path must take the same architectural
                // transitions as the timed one.
                fast.warm_access_block(block, kind_of(w));
                naive.warm_access_block(block, kind_of(w));
                continue;
            }
            let out = fast.access_block(block, kind_of(w), t);
            assert_eq!(
                out,
                naive.access_block(block, kind_of(w), t),
                "outcome of {block} at {t}"
            );
            t = out.complete_at + 1;
        }
        assert_eq!(fast.stats(), naive.stats(), "final stats diverged");
        assert_eq!(fast.memory_accesses(), naive.memory_accesses());
    });
}

/// 8. The L4 DRAM-cache tier (sorted consistent-hash ring, flat tag
/// arena, packed LRU words, direct-mapped tag cache) is bit-identical to
/// its naive oracle — every fill/writeback completion cycle, warm-path
/// transition, residency/dirty answer, stats field, and downstream DRAM
/// channel cycle — including access sequences straddling two live
/// resizes at one- and two-thirds of the stream.
#[test]
fn l4_dram_cache_matches_naive_oracle() {
    let gen = (
        trace(4_096),
        range_u32(1, 6),  // initial banks
        range_u32(1, 10), // first mid-stream resize target
        range_u32(1, 10), // second mid-stream resize target
        any_u64(),        // ring hash seed
    );
    dprop("l4_dram_cache_matches_naive_oracle").check(&gen, |(ops, banks, t1, t2, seed)| {
        // A deliberately tiny tier (16 sets x 4 ways per bank, 16
        // tag-cache slots) so 400 ops create evictions, dirty victims,
        // tag-cache conflicts, and resize flush traffic.
        let mut cfg = L4Config::tdram();
        cfg.n_banks = *banks;
        cfg.bank_blocks = 64;
        cfg.assoc = 4;
        cfg.vnodes_per_bank = 8;
        cfg.hash_seed = *seed;
        cfg.tag_cache_entries = 16;
        let mut fast = L4DramCache::new(cfg.clone());
        let mut naive = NaiveL4::new(cfg.clone());
        let mut fast_dram = MainMemory::micro2003();
        let mut naive_dram = MainMemory::micro2003();
        let (r1, r2) = (ops.len() / 3, ops.len() * 2 / 3);
        let mut t = Cycle::ZERO;
        for (i, &(b, w)) in ops.iter().enumerate() {
            if (i == r1 && r1 != r2) || i == r2 {
                let target = if i == r1 { *t1 } else { *t2 };
                assert_eq!(
                    fast.resize(target, t, &mut fast_dram),
                    naive.resize(target, t, &mut naive_dram),
                    "resize to {target} at {t}"
                );
                assert_eq!(fast.n_banks(), naive.n_banks());
            }
            let block = BlockAddr::from_index(b);
            if i % 13 == 7 {
                // Warm-up path: architectural transitions, no timing.
                if w {
                    fast.warm_writeback(block);
                    naive.warm_writeback(block);
                } else {
                    fast.warm_fill(block);
                    naive.warm_fill(block);
                }
            } else {
                let done = if w {
                    fast.writeback(block, cfg.block_bytes, t, &mut fast_dram)
                } else {
                    fast.fill(block, cfg.block_bytes, t, &mut fast_dram)
                };
                let oracle = if w {
                    naive.writeback(block, cfg.block_bytes, t, &mut naive_dram)
                } else {
                    naive.fill(block, cfg.block_bytes, t, &mut naive_dram)
                };
                assert_eq!(done, oracle, "completion of {block} at {t}");
                t = done + 1;
            }
            assert_eq!(fast.resident(block), naive.resident(block), "residency of {block}");
            assert_eq!(fast.is_dirty(block), naive.is_dirty(block), "dirtiness of {block}");
        }
        assert_eq!(fast.stats(), naive.stats(), "final stats diverged");
        assert_eq!(fast_dram.busy_cycles(), naive_dram.busy_cycles(), "DRAM channel diverged");
    });
}
