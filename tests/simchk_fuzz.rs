//! Randomized coverage for the `simbase::snapshot` checkpoint container:
//! seal→open round trips must be bit-exact for arbitrary payloads, and a
//! checkpoint that was truncated, corrupted, or written by a different
//! codec version must *never* open — a silently-wrong cache restore would
//! poison every measured number downstream.
//!
//! The container framing (magic / version / length / FNV-1a-128 checksum)
//! is pinned by unit tests in `simbase::snapshot`; these properties fuzz
//! what the pin can't cover: every payload length, every cut point an
//! interrupted write could leave behind, every single-byte corruption,
//! and arbitrary typed-field sequences through `Encoder` / `Decoder`.

use simbase::snapshot::{open, seal, Decoder, Encoder, SnapshotError, MAGIC, OVERHEAD};
use simkit::prop::{
    any_u64, any_u8, checker, range_u32, range_u64, select, vec_of, Checker, Gen,
};

fn fprop(name: &str) -> Checker {
    checker(name).cases(64).corpus(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/differential-regressions.txt"
    ))
}

fn any_u32() -> impl Gen<Value = u32> {
    range_u32(0, u32::MAX)
}

/// 1. Seal → open returns the exact payload for any payload and version,
/// and sealing is deterministic (same input → same container bytes).
#[test]
fn simchk_roundtrip_is_bit_exact() {
    let gen = (vec_of(any_u8(), 0, 512), any_u32());
    fprop("simchk_roundtrip_is_bit_exact").check(&gen, |(payload, version)| {
        let sealed = seal(*version, payload);
        assert_eq!(sealed.len(), payload.len() + OVERHEAD);
        assert_eq!(&sealed[..8], &MAGIC, "container must lead with the magic");
        let reopened = open(&sealed, *version).expect("own seal must open");
        assert_eq!(reopened, payload.as_slice(), "open changed the payload");
        assert_eq!(seal(*version, payload), sealed, "seal is not deterministic");
    });
}

/// 2. A container cut at ANY point strictly inside it never opens: every
/// cut reports `Truncated` once the magic prefix matches, and cuts inside
/// a mismatching prefix report `BadMagic`. No cut may yield `Ok`.
#[test]
fn simchk_truncation_never_opens() {
    let gen = (vec_of(any_u8(), 0, 256), any_u32(), any_u64());
    fprop("simchk_truncation_never_opens").check(&gen, |(payload, version, cut_seed)| {
        let sealed = seal(*version, payload);
        let cut = (cut_seed % sealed.len() as u64) as usize;
        let err = open(&sealed[..cut], *version).expect_err("truncated container opened");
        // Inside the magic the prefix still matches MAGIC, so the codec
        // can (and does) say Truncated; from byte 8 on it must.
        assert_eq!(err, SnapshotError::Truncated, "cut at {cut}/{}", sealed.len());
    });
}

/// 3. Flipping any single byte of a sealed container never opens as the
/// original payload. Whatever layer the corruption lands in — magic,
/// version, length, payload, checksum — some check must reject it.
#[test]
fn simchk_single_byte_corruption_never_opens() {
    let gen = (
        vec_of(any_u8(), 0, 256),
        any_u32(),
        any_u64(),
        select((1u8..=255).collect::<Vec<_>>()),
    );
    fprop("simchk_single_byte_corruption_never_opens").check(
        &gen,
        |(payload, version, victim_seed, flip)| {
            let mut sealed = seal(*version, payload);
            let victim = (victim_seed % sealed.len() as u64) as usize;
            sealed[victim] ^= *flip; // flip != 0, so the byte really changes
            let err = open(&sealed, *version).expect_err("corrupt container opened");
            match (victim, err) {
                (0..=7, SnapshotError::BadMagic) => {}
                (8..=11, SnapshotError::VersionMismatch { expected, .. }) => {
                    assert_eq!(expected, *version);
                }
                // A corrupted length field can claim too few bytes
                // (Truncated / trailing-bytes Malformed) or overflow; a
                // corrupted payload or checksum must fail the checksum.
                (12..=19, SnapshotError::Truncated)
                | (12..=19, SnapshotError::Malformed(_))
                | (_, SnapshotError::ChecksumMismatch) => {}
                (at, other) => panic!("byte {at} flipped by {flip:#x}: unexpected {other:?}"),
            }
        },
    );
}

/// 4. A snapshot sealed by codec version `v` opened expecting `w != v`
/// reports exactly `VersionMismatch {{ found: v, expected: w }}` — the
/// reader learns both sides, and the store treats it as a rebuild, never
/// a decode of stale state.
#[test]
fn simchk_version_mismatch_reports_both_versions() {
    let gen = (vec_of(any_u8(), 0, 64), any_u32(), any_u32());
    fprop("simchk_version_mismatch_reports_both_versions").check(
        &gen,
        |(payload, sealed_v, opened_v)| {
            let sealed = seal(*sealed_v, payload);
            let got = open(&sealed, *opened_v);
            if sealed_v == opened_v {
                assert_eq!(got.expect("matching version opens"), payload.as_slice());
            } else {
                assert_eq!(
                    got,
                    Err(SnapshotError::VersionMismatch {
                        found: *sealed_v,
                        expected: *opened_v,
                    })
                );
            }
        },
    );
}

/// One arbitrary typed field for the Encoder/Decoder layer.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Field {
    U8(u8),
    U32(u32),
    U64(u64),
    Bool(bool),
    Bytes(Vec<u8>),
    U64s(Vec<u64>),
    U32s(Vec<u32>),
}

fn field_gen() -> impl Gen<Value = Field> {
    struct FieldGen;
    impl Gen for FieldGen {
        type Value = Field;
        fn generate(&self, rng: &mut simbase::rng::SimRng) -> Field {
            match rng.next_u64() % 7 {
                0 => Field::U8(rng.next_u64() as u8),
                1 => Field::U32(rng.next_u64() as u32),
                2 => Field::U64(rng.next_u64()),
                3 => Field::Bool(rng.next_u64() & 1 == 1),
                4 => Field::Bytes((0..rng.next_u64() % 17).map(|_| rng.next_u64() as u8).collect()),
                5 => Field::U64s((0..rng.next_u64() % 9).map(|_| rng.next_u64()).collect()),
                _ => Field::U32s((0..rng.next_u64() % 9).map(|_| rng.next_u64() as u32).collect()),
            }
        }
        fn shrink(&self, v: &Field) -> Vec<Field> {
            // Shrink toward the smallest value of the same shape.
            match v {
                Field::U8(0) | Field::U32(0) | Field::U64(0) | Field::Bool(false) => vec![],
                Field::U8(_) => vec![Field::U8(0)],
                Field::U32(_) => vec![Field::U32(0)],
                Field::U64(_) => vec![Field::U64(0)],
                Field::Bool(_) => vec![Field::Bool(false)],
                Field::Bytes(b) if b.is_empty() => vec![],
                Field::Bytes(b) => vec![Field::Bytes(b[..b.len() - 1].to_vec())],
                Field::U64s(b) if b.is_empty() => vec![],
                Field::U64s(b) => vec![Field::U64s(b[..b.len() - 1].to_vec())],
                Field::U32s(b) if b.is_empty() => vec![],
                Field::U32s(b) => vec![Field::U32s(b[..b.len() - 1].to_vec())],
            }
        }
    }
    FieldGen
}

fn encode(fields: &[Field]) -> Vec<u8> {
    let mut e = Encoder::new();
    for f in fields {
        match f {
            Field::U8(v) => e.put_u8(*v),
            Field::U32(v) => e.put_u32(*v),
            Field::U64(v) => e.put_u64(*v),
            Field::Bool(v) => e.put_bool(*v),
            Field::Bytes(v) => e.put_u8_slice(v),
            Field::U64s(v) => e.put_u64_slice(v),
            Field::U32s(v) => e.put_u32_slice(v),
        }
    }
    e.into_bytes()
}

fn decode_one(d: &mut Decoder<'_>, shape: &Field) -> Result<Field, SnapshotError> {
    Ok(match shape {
        Field::U8(_) => Field::U8(d.u8()?),
        Field::U32(_) => Field::U32(d.u32()?),
        Field::U64(_) => Field::U64(d.u64()?),
        Field::Bool(_) => Field::Bool(d.bool()?),
        Field::Bytes(_) => Field::Bytes(d.u8_slice()?),
        Field::U64s(_) => Field::U64s(d.u64_slice()?),
        Field::U32s(_) => Field::U32s(d.u32_slice()?),
    })
}

/// 5. Any typed field sequence round-trips field-for-field through
/// Encoder → seal → open → Decoder, and `finish()` proves the decoder
/// consumed exactly the bytes the encoder wrote.
#[test]
fn simchk_typed_fields_roundtrip_through_container() {
    let gen = (vec_of(field_gen(), 0, 40), any_u32());
    fprop("simchk_typed_fields_roundtrip_through_container").check(&gen, |(fields, version)| {
        let sealed = seal(*version, &encode(fields));
        let payload = open(&sealed, *version).expect("own seal opens");
        let mut d = Decoder::new(payload);
        for want in fields {
            let got = decode_one(&mut d, want).expect("clean payload decodes");
            assert_eq!(&got, want, "decode changed a field");
        }
        d.finish().expect("decoder must consume the whole payload");
    });
}

/// 6. A typed payload cut at any interior point fails with `Truncated`
/// (or a bounds-check `Malformed` when the cut lands inside a
/// length-prefixed slice) — it never decodes a wrong value, and every
/// field before the cut still decodes exactly.
#[test]
fn simchk_typed_truncation_fails_cleanly() {
    let gen = (vec_of(field_gen(), 1, 24), range_u64(0, u64::MAX));
    fprop("simchk_typed_truncation_fails_cleanly").check(&gen, |(fields, cut_seed)| {
        let bytes = encode(fields);
        if bytes.is_empty() {
            return;
        }
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let mut d = Decoder::new(&bytes[..cut]);
        let mut decoded = 0usize;
        let err = loop {
            if decoded == fields.len() {
                // The cut removed bytes, so the decoder must notice that
                // something is missing before reproducing every field.
                panic!("truncated payload decoded all {decoded} fields");
            }
            match decode_one(&mut d, &fields[decoded]) {
                Ok(got) => {
                    assert_eq!(&got, &fields[decoded], "prefix field changed");
                    decoded += 1;
                }
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, SnapshotError::Truncated | SnapshotError::Malformed(_)),
            "unexpected error {err:?} after {decoded} fields"
        );
    });
}

/// 7. Length-prefixed sections round-trip through the container for any
/// payload size — *including* zero-length and single-byte sections, the
/// two sizes where an off-by-one in the length framing or the
/// sub-decoder slice bounds would hide — and a field written after the
/// section list still decodes, proving every section advanced the outer
/// decoder by exactly its framed size.
#[test]
fn simchk_sections_roundtrip_including_degenerate_sizes() {
    let gen = (vec_of(vec_of(any_u8(), 0, 16), 0, 12), any_u32(), any_u64());
    fprop("simchk_sections_roundtrip_including_degenerate_sizes").check(
        &gen,
        |(sections, version, sentinel)| {
            let mut e = Encoder::new();
            e.put_len(sections.len());
            for s in sections {
                e.put_section(|inner| {
                    for &b in s {
                        inner.put_u8(b);
                    }
                });
            }
            e.put_u64(*sentinel);
            let sealed = seal(*version, &e.into_bytes());
            let payload = open(&sealed, *version).expect("own seal opens");
            let mut d = Decoder::new(payload);
            assert_eq!(d.len().expect("section count"), sections.len());
            for want in sections {
                let mut sd = d.section().expect("section opens");
                assert_eq!(sd.remaining(), want.len(), "section framed a wrong size");
                for &b in want {
                    assert_eq!(sd.u8().expect("section byte"), b);
                }
                sd.finish().expect("section fully consumed");
            }
            assert_eq!(d.u64().expect("post-section field"), *sentinel);
            d.finish().expect("outer decoder must land on the end");
        },
    );
}

/// 8. Empty and single-byte sections skip cleanly: a reader that calls
/// `section()` and discards the sub-decoder lands exactly on the next
/// field, whether the skipped section held zero bytes, one byte, or a
/// mix — the skip path must not depend on the section's contents.
#[test]
fn simchk_degenerate_sections_skip_cleanly() {
    let gen = (vec_of(range_u64(0, 1), 1, 24), any_u8(), any_u32());
    fprop("simchk_degenerate_sections_skip_cleanly").check(&gen, |(sizes, fill, version)| {
        let mut e = Encoder::new();
        for &n in sizes {
            e.put_section(|inner| {
                for _ in 0..n {
                    inner.put_u8(*fill);
                }
            });
        }
        e.put_u32(0xC0DE);
        let sealed = seal(*version, &e.into_bytes());
        let payload = open(&sealed, *version).expect("own seal opens");
        let mut d = Decoder::new(payload);
        for &n in sizes {
            let skipped = d.section().expect("section skips");
            assert_eq!(skipped.remaining() as u64, n);
        }
        assert_eq!(d.u32().expect("sentinel after sections"), 0xC0DE);
        d.finish().expect("skip path must consume whole sections");
    });
}

/// A small populated L4 DRAM-cache tier and its snapshot section bytes:
/// random warm traffic, then a resize (so retired/live slot framing is
/// exercised), then `save_state`.
fn l4_section(ops: &[(u64, bool)], target: u32) -> (memsys::dramcache::L4Config, Vec<u8>) {
    use memsys::dramcache::{L4Config, L4DramCache};
    let cfg = L4Config {
        n_banks: 4,
        bank_blocks: 64,
        assoc: 4,
        vnodes_per_bank: 8,
        tag_cache_entries: 16,
        ..L4Config::tdram()
    };
    let mut l4 = L4DramCache::new(cfg.clone());
    let mut dram = memsys::memory::MainMemory::micro2003();
    for &(b, w) in ops {
        let block = simbase::BlockAddr::from_index(b);
        if w {
            l4.warm_writeback(block);
        } else {
            l4.warm_fill(block);
        }
    }
    l4.resize(target, simbase::Cycle::ZERO, &mut dram);
    let mut e = Encoder::new();
    l4.save_state(&mut e);
    (cfg, e.into_bytes())
}

/// 9. An L4 snapshot section cut at any strict interior point never
/// loads: whatever the cut removes — header, bank map, a slot's tag or
/// dirty words, the LRU table — the decoder reports an error instead of
/// restoring a partial tier.
#[test]
fn l4_section_truncation_never_loads() {
    let gen = (
        vec_of((range_u64(0, 2_048), simkit::prop::any_bool()), 1, 200),
        range_u32(1, 7),
        any_u64(),
    );
    fprop("l4_section_truncation_never_loads").check(&gen, |(ops, target, cut_seed)| {
        let (cfg, bytes) = l4_section(ops, *target);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let mut fresh = memsys::dramcache::L4DramCache::new(cfg);
        let err = fresh.load_state(&mut Decoder::new(&bytes[..cut]));
        assert!(err.is_err(), "cut at {cut}/{} loaded", bytes.len());
    });
}

/// 10. Corrupting the L4 section framing never loads: any change to the
/// magic (bytes 0..8) or the layout version (bytes 8..12) is rejected as
/// `Malformed` before a single bank byte is interpreted. Payload-byte
/// corruption is the sealed container checksum's job (property 3); the
/// framing must hold even for bytes the checksum never sees.
#[test]
fn l4_section_header_corruption_never_loads() {
    let gen = (
        vec_of((range_u64(0, 2_048), simkit::prop::any_bool()), 1, 100),
        range_u32(1, 7),
        range_u64(0, 11),
        select((1u8..=255).collect::<Vec<_>>()),
    );
    fprop("l4_section_header_corruption_never_loads").check(
        &gen,
        |(ops, target, victim, flip)| {
            let (cfg, mut bytes) = l4_section(ops, *target);
            bytes[*victim as usize] ^= *flip;
            let mut fresh = memsys::dramcache::L4DramCache::new(cfg);
            let err = fresh.load_state(&mut Decoder::new(&bytes));
            assert!(
                matches!(err, Err(SnapshotError::Malformed(_))),
                "header byte {victim} flipped by {flip:#x}: got {err:?}"
            );
        },
    );
}

/// 11. Version skew on `L4_SNAPSHOT_VERSION` is rejected for every other
/// version value: a section written by a future (or past) layout never
/// decodes into this one, independent of the payload that follows.
#[test]
fn l4_section_version_skew_is_rejected() {
    let gen = (
        vec_of((range_u64(0, 2_048), simkit::prop::any_bool()), 1, 100),
        range_u32(1, 7),
        range_u32(0, u32::MAX),
    );
    fprop("l4_section_version_skew_is_rejected").check(&gen, |(ops, target, skewed)| {
        let (cfg, mut bytes) = l4_section(ops, *target);
        bytes[8..12].copy_from_slice(&skewed.to_le_bytes());
        let mut fresh = memsys::dramcache::L4DramCache::new(cfg.clone());
        let got = fresh.load_state(&mut Decoder::new(&bytes));
        if *skewed == memsys::dramcache::L4_SNAPSHOT_VERSION {
            assert!(got.is_ok(), "the genuine version must still load");
        } else {
            assert!(
                matches!(got, Err(SnapshotError::Malformed(_))),
                "version {skewed} decoded: {got:?}"
            );
        }
    });
}
