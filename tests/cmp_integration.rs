//! End-to-end checks of the CMP subsystem through the experiment
//! harness: CMP runs must be bit-identical across simsched worker-thread
//! counts, across cold and warm checkpoint paths, and across artifact
//! resume — the same determinism contract `simsched_integration.rs`
//! pins for the single-core sweep.

use experiments::exps::Sweep;
use experiments::{CmpRun, SampleSpec, Scale};
use std::path::PathBuf;

fn tiny() -> Scale {
    Scale {
        warmup: 12_000,
        measure: 20_000,
    }
}

/// A mixed CMP job list: two core counts, two organizations.
const JOBS: [(u32, &'static str); 3] = [(2, "nf4"), (2, "base"), (4, "nf4")];

fn sweep(scale: Scale) -> Sweep {
    // CMP jobs bring their own high-load application assignment; the
    // sweep just needs a non-empty per-app roster to construct.
    Sweep::with_apps(scale, vec![workloads::profiles::by_name("galgel").expect("in roster")])
}

fn runs_of(s: &Sweep) -> Vec<CmpRun> {
    JOBS.iter().map(|&(cores, key)| (*s.run_cmp(cores, key)).clone()).collect()
}

/// A process-unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cmp-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn cmp_runs_are_bit_identical_across_thread_counts() {
    // Same CMP jobs on 1, 2, and 8 worker threads: every CmpRun must be
    // bit-identical and the rendered table byte-identical.
    let serial = sweep(tiny());
    serial.prefetch_cmp(&JOBS);
    let baseline_runs = runs_of(&serial);
    let baseline_table = experiments::cmp::cmp_table(&serial, &[2, 4]).render();

    for threads in [2usize, 8] {
        let s = sweep(tiny()).with_threads(threads);
        s.prefetch_cmp(&JOBS);
        assert_eq!(
            s.simulated() as usize,
            JOBS.len(),
            "{threads}-thread prefetch duplicated or lost CMP work"
        );
        assert_eq!(runs_of(&s), baseline_runs, "{threads}-thread CmpRuns differ from serial");
        assert_eq!(
            experiments::cmp::cmp_table(&s, &[2, 4]).render(),
            baseline_table,
            "{threads}-thread cmp table differs from serial"
        );
    }
}

#[test]
fn cmp_checkpoints_are_bit_identical_cold_and_warm() {
    let scratch = Scratch::new("chk");

    // Reference: no checkpoint store anywhere near the run.
    let direct = sweep(tiny());
    let want = runs_of(&direct);

    // Cold path: every warm-up digest misses, snapshots are built and
    // written — and the run must already go through the decode leg.
    let cold = sweep(tiny()).with_checkpoints(&scratch.0).expect("checkpoint dir");
    assert_eq!(runs_of(&cold), want, "cold checkpoint path diverged from direct");
    drop(cold);
    let snapshots = std::fs::read_dir(&scratch.0).expect("dir").count();
    assert!(snapshots > 0, "cold pass wrote no checkpoints");

    // Warm path: a fresh sweep over the same directory restores every
    // warm-up from disk instead of re-simulating it.
    let warm = sweep(tiny()).with_checkpoints(&scratch.0).expect("checkpoint dir");
    assert_eq!(runs_of(&warm), want, "warm checkpoint path diverged from direct");
}

#[test]
fn sampled_cmp_runs_are_bit_identical_across_threads_and_stores() {
    // The `repro --cores 4 --sample` regime: 4-core CMP scenarios
    // estimated from periodic detailed windows. The determinism contract
    // is identical to the full-detail one — bit-identical CmpRuns across
    // 1, 2, and 8 simsched worker threads and across cold and warm
    // checkpoint stores.
    let spec = SampleSpec { period: 8_000, warmup: 400, measure: 1_600 };
    let jobs: [(u32, &'static str); 2] = [(4, "nf4"), (4, "base")];
    let sampled = |threads: usize| {
        sweep(tiny()).with_threads(threads).with_sample(Some(spec))
    };
    let runs = |s: &Sweep| -> Vec<CmpRun> {
        jobs.iter().map(|&(cores, key)| (*s.run_cmp(cores, key)).clone()).collect()
    };

    let serial = sampled(1);
    serial.prefetch_cmp(&jobs);
    let want = runs(&serial);
    for threads in [2usize, 8] {
        let s = sampled(threads);
        s.prefetch_cmp(&jobs);
        assert_eq!(runs(&s), want, "{threads}-thread sampled CmpRuns differ from serial");
    }

    // Cold then warm checkpoint store, same directory.
    let scratch = Scratch::new("sampled-chk");
    let cold = sampled(2).with_checkpoints(&scratch.0).expect("checkpoint dir");
    assert_eq!(runs(&cold), want, "cold-store sampled CmpRuns diverged");
    drop(cold);
    let warm = sampled(8).with_checkpoints(&scratch.0).expect("checkpoint dir");
    assert_eq!(runs(&warm), want, "warm-store sampled CmpRuns diverged");

    // And the sampled estimate is a genuinely different regime from the
    // full-detail run, not an alias of it.
    let full = sweep(tiny());
    assert_ne!(
        (*full.run_cmp(4, "nf4")).clone(),
        want[0],
        "sampled run must not alias the full-detail run"
    );
}

#[test]
fn cmp_artifacts_resume_bit_identically() {
    let scratch = Scratch::new("art");
    let reference = sweep(tiny());

    let first = sweep(tiny()).with_artifacts(&scratch.0).expect("artifact dir");
    first.prefetch_cmp(&JOBS);
    assert_eq!(first.simulated() as usize, JOBS.len());
    drop(first);

    let resumed = sweep(tiny()).with_artifacts(&scratch.0).expect("artifact dir");
    resumed.prefetch_cmp(&JOBS);
    assert_eq!(resumed.resumed() as usize, JOBS.len(), "artifacted CMP jobs should load");
    assert_eq!(resumed.simulated(), 0, "fully-artifacted CMP sweep must not re-simulate");
    assert_eq!(runs_of(&resumed), runs_of(&reference), "resumed CmpRuns diverged");
}
