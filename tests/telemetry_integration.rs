//! End-to-end checks of the simtel telemetry subsystem through the
//! experiment harness: the deterministic channels (`metrics.json`,
//! `trace.json`) are byte-identical for any worker-thread count, the
//! exported summary fields are bit-exact against the `AppRun` the tables
//! print from, and the trace exports load as Chrome trace-event files.

use experiments::exps::Sweep;
use experiments::Scale;
use simbase::json::{self, Json};
use simtel::trace::validate_chrome_trace;
use simtel::Telemetry;
use std::sync::Arc;
use workloads::profiles::by_name;

fn tiny() -> Scale {
    Scale {
        warmup: 30_000,
        measure: 50_000,
    }
}

fn apps() -> Vec<workloads::profiles::BenchProfile> {
    vec![by_name("art").expect("in roster"), by_name("wupwise").expect("in roster")]
}

const KEYS: [&str; 3] = ["base", "nf4", "dn-perf"];

/// Runs the reference sweep with a telemetry collector attached and
/// returns the collector.
fn collected(threads: usize) -> Arc<Telemetry> {
    let tel = Arc::new(Telemetry::with_params(512, 10_000));
    let sweep = Sweep::with_apps(tiny(), apps())
        .with_threads(threads)
        .with_telemetry(Arc::clone(&tel));
    sweep.prefetch_all(&KEYS);
    tel
}

#[test]
fn deterministic_exports_are_byte_identical_across_thread_counts() {
    let baseline = collected(1);
    let metrics = baseline.render_metrics();
    let trace = baseline.render_trace();
    assert!(!metrics.is_empty() && !trace.is_empty());
    for threads in [2usize, 8] {
        let tel = collected(threads);
        assert_eq!(tel.render_metrics(), metrics, "{threads}-thread metrics differ");
        assert_eq!(tel.render_trace(), trace, "{threads}-thread trace differs");
    }
}

#[test]
fn metrics_fields_are_bit_exact_against_the_app_run() {
    let tel = Arc::new(Telemetry::with_params(512, 10_000));
    let sweep = Sweep::with_apps(tiny(), apps()).with_telemetry(Arc::clone(&tel));
    sweep.prefetch_all(&KEYS);

    let parsed = json::parse(&tel.render_metrics()).expect("metrics.json parses");
    assert_eq!(
        parsed.field("schema").and_then(Json::as_str),
        Some("simtel-metrics-v1")
    );

    let bits = |j: &Json| match *j {
        Json::F64(v) => v.to_bits(),
        Json::U64(v) => (v as f64).to_bits(),
        ref other => panic!("expected a number, got {other:?}"),
    };
    for &app in &apps() {
        for key in KEYS {
            let run = sweep.run(app, key);
            let rec = parsed
                .field("runs")
                .and_then(|r| r.field(&format!("{key}/{}", app.name)))
                .unwrap_or_else(|| panic!("missing run record {key}/{}", app.name));
            // Integers exactly, floats bit-for-bit: these are the same
            // numbers the rendered tables derive from.
            assert_eq!(rec.field("instructions").and_then(Json::as_u64), Some(run.core.instructions));
            assert_eq!(rec.field("cycles").and_then(Json::as_u64), Some(run.core.cycles));
            assert_eq!(bits(rec.field("ipc").expect("ipc")), run.ipc().to_bits());
            assert_eq!(bits(rec.field("miss_frac").expect("miss_frac")), run.miss_frac.to_bits());
            assert_eq!(bits(rec.field("edp").expect("edp")), run.edp().to_bits());
            let fracs = rec.field("group_fracs").and_then(Json::as_arr).expect("group_fracs");
            assert_eq!(fracs.len(), run.group_fracs.len(), "{key}/{}", app.name);
            for (got, want) in fracs.iter().zip(&run.group_fracs) {
                assert_eq!(bits(got), want.to_bits(), "{key}/{}", app.name);
            }
        }
    }
}

#[test]
fn trace_exports_validate_as_chrome_traces() {
    let tel = collected(2);
    let trace = validate_chrome_trace(&tel.render_trace()).expect("trace.json valid");
    // Six runs worth of spans: tag probes and d-group accesses dominate.
    assert_eq!(trace.metadata, tel.runs() + 1, "process name plus one thread name per run");
    assert!(trace.complete_spans > 0, "expected cycle-stamped spans");
    assert!(trace.counters > 0, "expected snapshot counter tracks");
    let wall = validate_chrome_trace(&tel.render_wall()).expect("wall.json valid");
    assert_eq!(wall.events, tel.wall_events() + 1, "wall events plus process metadata");
}

#[test]
fn sampled_sweeps_populate_the_sampling_overhead_track() {
    let tel = Arc::new(Telemetry::with_params(512, 10_000));
    let spec = experiments::SampleSpec { period: 5_000, warmup: 200, measure: 800 };
    let sweep = Sweep::with_apps(tiny(), apps())
        .with_threads(2)
        .with_sample(Some(spec))
        .with_intervals(2)
        .with_telemetry(Arc::clone(&tel));
    sweep.prefetch_all(&["nf4"]);

    // Two apps, each sampled: one prefix span and one measure span per
    // run, plus one mark per detailed window (10 windows at this scale).
    assert_eq!(tel.wall_events_in("sample-prefix"), 2, "one snapshot-chain span per run");
    assert_eq!(tel.wall_events_in("sample-measure"), 2, "one window-execution span per run");
    let windows = (tiny().measure / spec.period) as usize;
    assert_eq!(tel.wall_events_in("sample-window"), 2 * windows, "one mark per window");
    // Every sampled run still lands in metrics.json like a full run.
    assert_eq!(tel.runs(), 2);
    let wall = validate_chrome_trace(&tel.render_wall()).expect("wall.json valid");
    assert_eq!(wall.events, tel.wall_events() + 1);
}

#[test]
fn resumed_sweeps_still_record_every_run() {
    let dir = std::env::temp_dir().join(format!("simtel-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let first = Sweep::with_apps(tiny(), apps()).with_artifacts(&dir).expect("dir");
    first.prefetch_all(&KEYS);
    let total = apps().len() * KEYS.len();
    assert_eq!(first.simulated() as usize, total);
    drop(first);

    // Second pass loads everything from artifacts; the summary fields
    // still land in metrics.json (spans are not replayed).
    let tel = Arc::new(Telemetry::with_params(512, 10_000));
    let resumed = Sweep::with_apps(tiny(), apps())
        .with_artifacts(&dir)
        .expect("dir")
        .with_telemetry(Arc::clone(&tel));
    resumed.prefetch_all(&KEYS);
    assert_eq!(resumed.resumed() as usize, total);
    assert_eq!(tel.runs(), total, "resumed runs must still be recorded");

    let parsed = json::parse(&tel.render_metrics()).expect("parses");
    let rec = parsed
        .field("runs")
        .and_then(|r| r.field(&format!("base/{}", apps()[0].name)))
        .expect("resumed run record");
    assert!(rec.field("ipc").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
