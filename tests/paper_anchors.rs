//! The paper's headline claims, verified end-to-end at a reduced scale.
//!
//! These tests assert *directions and orderings* (who wins, where the
//! crossovers fall), which are stable at small scale; EXPERIMENTS.md
//! records the full-scale magnitudes against the paper's numbers.

use experiments::exps::{self, Sweep};
use experiments::Scale;
use workloads::profiles::by_name;

fn sweep() -> Sweep {
    // Three apps spanning the behavior space: a mid-size FP app, the
    // large-working-set app, and a low-load app.
    Sweep::with_apps(
        Scale {
            warmup: 60_000,
            measure: 90_000,
        },
        vec![
            by_name("equake").unwrap(),
            by_name("art").unwrap(),
            by_name("wupwise").unwrap(),
        ],
    )
}

#[test]
fn table2_and_table4_reproduce_paper_anchor_cells() {
    let t2 = exps::table2();
    // Paper Table 2: 0.42 / 3.3 / 0.40 / 4.6 nJ for the NuRAPID rows.
    for (i, want) in [(0, 0.42), (1, 3.3), (2, 0.40), (3, 4.6)] {
        let got = t2.rows[i].1;
        assert!(
            (got - want).abs() / want < 0.30,
            "Table 2 row {i}: {got:.2} vs paper {want}"
        );
    }
    let t4 = exps::table4();
    // Paper Table 4: fastest MB at 19 / 14 / 12 cycles; D-NUCA averages
    // ramp from ~7 to ~29.
    assert_eq!((t4.rows[0].0, t4.rows[0].1, t4.rows[0].2), (19, 14, 12));
    assert!(t4.rows[0].3 .1 < 9.0);
    assert!(t4.rows[7].3 .1 > 25.0);
}

#[test]
fn figure4_distance_associative_placement_wins() {
    let mut s = sweep();
    let f = exps::fig4(&mut s);
    // Paper: 74% (set-assoc) vs 86% (distance-assoc) first-group hits,
    // and far fewer accesses to the slowest two d-groups.
    assert!(f.avg_first_group(1) > f.avg_first_group(0) + 0.05);
    assert!(f.avg_last_two_groups(1) < f.avg_last_two_groups(0));
    // Both placements share the tag organization: identical misses.
    assert!((f.avg_miss(0) - f.avg_miss(1)).abs() < 1e-9);
}

#[test]
fn figure5_promotion_policies_order_correctly() {
    let mut s = sweep();
    let f = exps::fig5(&mut s);
    // Paper: 50% / 84% / 86% first-group accesses.
    let dm = f.avg_first_group(0);
    let nf = f.avg_first_group(1);
    let fs = f.avg_first_group(2);
    assert!(nf > dm + 0.05, "next-fastest {nf} vs demotion-only {dm}");
    assert!(fs >= nf - 0.02, "fastest {fs} vs next-fastest {nf}");
}

#[test]
fn figure6_ideal_bounds_the_policies() {
    let mut s = sweep();
    let f = exps::fig6(&mut s);
    let (dm, nf, _fs, ideal) = (f.overall(0), f.overall(1), f.overall(2), f.overall(3));
    assert!(ideal >= nf - 1e-9, "ideal {ideal} vs nf {nf}");
    assert!(nf >= dm - 0.01, "nf {nf} vs dm {dm}");
    assert!(ideal > 1.0, "ideal must beat the base hierarchy");
}

#[test]
fn figure7_dgroup_capacity_crossover() {
    let mut s = sweep();
    let f = exps::fig7(&mut s);
    let (g2, g4, g8) = (
        f.avg_first_group(0),
        f.avg_first_group(1),
        f.avg_first_group(2),
    );
    // Paper: 90% / 85% / 77%, with a bigger drop from 4 to 8 d-groups
    // than from 2 to 4 (working sets fit 2-MB but not 1-MB d-groups).
    assert!(g2 > g4 && g4 > g8, "{g2} {g4} {g8}");
    assert!(g4 - g8 > g2 - g4, "drop 4->8 must exceed 2->4");
}

#[test]
fn figure8_four_dgroups_beat_two() {
    let mut s = sweep();
    let f = exps::fig8(&mut s);
    // Paper: +0.5% / +5.9% / +6.1% — the 2-d-group configuration's bigger
    // fast group does not pay for its longer latency.
    assert!(f.overall(1) > f.overall(0), "4 d-groups must beat 2");
}

#[test]
fn section_532_eight_dgroups_swap_about_twice_as_much() {
    // Paper §5.3.2: "the 8-d-group NuRAPID ... incurs 2.2 times more
    // swaps due to promotion compared to the 4-d-group NuRAPID."
    let s = sweep();
    let apps = s.apps().to_vec();
    let (mut s4, mut s8) = (0u64, 0u64);
    for p in apps {
        s4 += s.run(p, "nf4").swaps;
        s8 += s.run(p, "nf8").swaps;
    }
    let ratio = s8 as f64 / s4 as f64;
    assert!(
        (1.4..=3.5).contains(&ratio),
        "8-d-group swap ratio {ratio} vs paper's 2.2x"
    );
}

#[test]
fn figure9_nurapid_outperforms_dnuca() {
    let mut s = sweep();
    let f = exps::fig9(&mut s);
    let dnuca = f.overall(0);
    let nr4 = f.overall(1);
    assert!(
        nr4 > dnuca + 0.01,
        "NuRAPID {nr4} must beat D-NUCA {dnuca}"
    );
}

#[test]
fn figure10_energy_headline() {
    let mut s = sweep();
    let f = exps::fig10(&mut s);
    // Paper: 77% lower L2 energy and 61% fewer d-group accesses than
    // D-NUCA. Directional bounds at small scale:
    assert!(
        f.energy_reduction_vs_dnuca() > 0.25,
        "energy reduction {}",
        f.energy_reduction_vs_dnuca()
    );
    assert!(
        f.access_reduction_vs_dnuca() > 0.2,
        "access reduction {}",
        f.access_reduction_vs_dnuca()
    );
}

/// The abstract's two headline numbers, tolerance-banded at a scale large
/// enough for the magnitudes (not just the directions) to converge:
/// "decreases L2 dynamic energy 77% while decreasing d-group accesses 61%"
/// relative to D-NUCA. At `Scale::quick()` the reproduction lands within a
/// few points of both (measured 77.6% / 64.5%); the bands leave room for
/// workload-calibration drift without letting the claims regress.
#[test]
fn abstract_headline_claims_within_tolerance_bands() {
    let mut s = Sweep::with_apps(
        Scale::quick(),
        vec![
            by_name("equake").unwrap(),
            by_name("art").unwrap(),
            by_name("wupwise").unwrap(),
        ],
    );
    let f = exps::fig10(&mut s);
    let energy = f.energy_reduction_vs_dnuca();
    let accesses = f.access_reduction_vs_dnuca();
    assert!(
        (energy - 0.77).abs() <= 0.10,
        "L2 dynamic-energy reduction {energy:.3} outside 0.77 ± 0.10 (paper: 77%)"
    );
    assert!(
        (accesses - 0.61).abs() <= 0.12,
        "d-group access reduction {accesses:.3} outside 0.61 ± 0.12 (paper: 61%)"
    );
}

#[test]
fn figure11_energy_delay_headline() {
    let mut s = sweep();
    let f = exps::fig11(&mut s);
    // Paper: ~7% lower energy-delay than both comparison points.
    assert!(f.nurapid_mean() < 1.0, "EDP {}", f.nurapid_mean());
    assert!(f.nurapid_mean() < f.dnuca_mean());
}

#[test]
fn section531_promotion_compensates_for_random_replacement() {
    let mut s = sweep();
    let l = exps::sec531(&mut s);
    let (_, dm_rand, dm_clock, dm_lru) = l.rows[0];
    let (_, nf_rand, _nf_clock, nf_lru) = l.rows[1];
    // The approximate-LRU middle ground lands between random and true LRU
    // under demotion-only (within noise at this scale).
    assert!(dm_clock > dm_rand - 0.03, "clock {dm_clock} vs random {dm_rand}");
    // Paper: demotion-only 54% (random) vs 64% (LRU); next-fastest 84%
    // (random) vs 87% (LRU) — i.e. the random/LRU gap shrinks sharply
    // under next-fastest.
    assert!(dm_lru > dm_rand, "LRU must beat random under demotion-only");
    let dm_gap = dm_lru - dm_rand;
    let nf_gap = (nf_lru - nf_rand).abs();
    assert!(
        nf_gap < dm_gap,
        "promotion must shrink the gap: dm {dm_gap} nf {nf_gap}"
    );
    // Paper: next-fastest with random replacement (84%) beats
    // demotion-only even with perfect LRU (64%). At this reduced scale we
    // assert the weaker ordering against demotion-only with random.
    assert!(nf_rand > dm_rand, "next-fastest+random beats demotion-only+random");
}
