//! Cross-crate integration: full-system runs through every lower-level
//! cache organization.

use experiments::exps::{kind_of, Sweep};
use experiments::runner::{run_app, L2Kind};
use experiments::Scale;
use nuca::SearchPolicy;
use nurapid::NuRapidConfig;
use workloads::profiles::{by_name, ROSTER};

fn tiny() -> Scale {
    Scale {
        warmup: 40_000,
        measure: 60_000,
    }
}

#[test]
fn every_organization_runs_every_roster_class() {
    // One high-load and one low-load app through all four organizations.
    for app in [by_name("equake").unwrap(), by_name("lucas").unwrap()] {
        for kind in [
            L2Kind::Base,
            L2Kind::NuRapid(NuRapidConfig::micro2003(4)),
            L2Kind::Coupled(4),
            L2Kind::Dnuca(SearchPolicy::SsEnergy),
        ] {
            let r = run_app(app, &kind, tiny());
            assert_eq!(r.core.instructions, 60_000, "{}", app.name);
            assert!(r.ipc() > 0.05 && r.ipc() < 8.0, "{} ipc {}", app.name, r.ipc());
            assert!(r.l2_accesses > 0, "{} must reach the L2", app.name);
            assert!(r.energy.total().nj() > 0.0);
        }
    }
}

#[test]
fn group_fractions_partition_accesses_in_all_nuca_organizations() {
    let app = by_name("mgrid").unwrap();
    for key in ["nf2", "nf4", "nf8", "sa4", "dn-perf", "dn-energy"] {
        let r = run_app(app, &kind_of(key), tiny());
        let total: f64 = r.group_fracs.iter().sum::<f64>() + r.miss_frac;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "{key}: fractions sum to {total}"
        );
    }
}

#[test]
fn nurapid_miss_count_is_promotion_policy_invariant() {
    // Section 2.2: distance replacement never evicts, so the end-to-end
    // miss count is identical across promotion policies.
    let app = by_name("twolf").unwrap();
    let m: Vec<u64> = ["dm4", "nf4", "fs4", "id4"]
        .iter()
        .map(|k| run_app(app, &kind_of(k), tiny()).l2_misses)
        .collect();
    assert!(m.windows(2).all(|w| w[0] == w[1]), "misses {m:?}");
}

#[test]
fn nurapid_miss_count_is_distance_victim_invariant() {
    let app = by_name("vpr").unwrap();
    let random = run_app(app, &kind_of("nf4"), tiny()).l2_misses;
    let lru = run_app(app, &kind_of("lru-nf"), tiny()).l2_misses;
    assert_eq!(random, lru);
}

#[test]
fn dnuca_miss_count_is_search_policy_invariant() {
    let app = by_name("parser").unwrap();
    let perf = run_app(app, &kind_of("dn-perf"), tiny()).l2_misses;
    let energy = run_app(app, &kind_of("dn-energy"), tiny()).l2_misses;
    assert_eq!(perf, energy);
}

#[test]
fn runs_are_deterministic_end_to_end() {
    let app = by_name("applu").unwrap();
    let a = run_app(app, &kind_of("nf4"), tiny());
    let b = run_app(app, &kind_of("nf4"), tiny());
    assert_eq!(a.core.cycles, b.core.cycles);
    assert_eq!(a.l2_accesses, b.l2_accesses);
    assert_eq!(a.swaps, b.swaps);
    assert!((a.l2_energy.nj() - b.l2_energy.nj()).abs() < 1e-9);
}

/// Same seed, same config ⇒ **bit-identical** stats structs, not just the
/// same headline numbers: every counter, every d-group access histogram
/// bucket, every energy tally field. This is what makes a printed
/// `SimRng` seed a complete description of an experiment.
#[test]
fn same_seed_runs_produce_bit_identical_stats() {
    // Full-system: the entire AppRun (core result, hit/miss counts,
    // d-group fractions, energy tallies) compares equal field-for-field,
    // including exact f64 energy values.
    let app = by_name("equake").unwrap();
    for key in ["nf4", "dn-energy", "base"] {
        let a = run_app(app, &kind_of(key), tiny());
        let b = run_app(app, &kind_of(key), tiny());
        assert_eq!(a, b, "{key}: same-seed runs diverged");
    }

    // Cache-level: drive the raw simulators with identically seeded
    // generators and compare the whole stats structs (hits, misses,
    // histograms, swap and traffic counters).
    use cpu::uop::TraceSource;
    use simbase::Cycle;
    use workloads::TraceGenerator;
    let drive_blocks = |seed: u64| {
        let mut gen = TraceGenerator::new(by_name("art").unwrap(), seed);
        (0..30_000)
            .filter_map(|_| {
                let op = gen.next_op();
                op.mem_addr.map(|a| (a, op.access_kind()))
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        drive_blocks(11),
        drive_blocks(11),
        "trace generation is the root of run determinism"
    );

    let geom = simbase::BlockGeometry::new(128);
    let run_nurapid_stats = || {
        let mut cache = nurapid::NuRapidCache::new(NuRapidConfig::micro2003(4));
        let mut t = Cycle::ZERO;
        for (addr, kind) in drive_blocks(7) {
            let out = cache.access_block(geom.block_of(addr), kind, t);
            t = out.complete_at + 1;
        }
        cache.stats().clone()
    };
    assert_eq!(run_nurapid_stats(), run_nurapid_stats());

    let run_dnuca_stats = || {
        let mut cache = nuca::DnucaCache::new(nuca::DnucaConfig::micro2003(SearchPolicy::SsEnergy));
        let mut t = Cycle::ZERO;
        for (addr, kind) in drive_blocks(7) {
            let out = cache.access_block(geom.block_of(addr), kind, t);
            t = out.complete_at + 1;
        }
        cache.stats().clone()
    };
    assert_eq!(run_dnuca_stats(), run_dnuca_stats());
}

#[test]
fn high_load_apps_exceed_low_load_apps_in_apki() {
    let sweep = Sweep::with_apps(
        tiny(),
        vec![
            by_name("applu").unwrap(),
            by_name("swim").unwrap(),
            by_name("lucas").unwrap(),
            by_name("wupwise").unwrap(),
        ],
    );
    let apki = |s: &Sweep, n: &str| s.run(by_name(n).unwrap(), "base").apki();
    let high = apki(&sweep, "applu").min(apki(&sweep, "swim"));
    let low = apki(&sweep, "lucas").max(apki(&sweep, "wupwise"));
    assert!(
        high > 2.0 * low,
        "high-load {high} must dwarf low-load {low}"
    );
}

#[test]
fn roster_is_complete_and_runnable() {
    // Smoke-test every application at a very small scale on the base
    // hierarchy.
    let s = Scale {
        warmup: 10_000,
        measure: 15_000,
    };
    for app in ROSTER {
        let r = run_app(app, &L2Kind::Base, s);
        assert!(r.ipc() > 0.0, "{}", app.name);
    }
}

#[test]
fn swaps_flow_in_nuca_organizations_but_not_base() {
    let app = by_name("art").unwrap();
    let nr = run_app(app, &kind_of("nf4"), tiny());
    assert!(nr.swaps > 0, "NuRAPID must promote/demote under pressure");
    let dn = run_app(app, &kind_of("dn-perf"), tiny());
    assert!(dn.swaps > 0, "D-NUCA must bubble");
    let base = run_app(app, &kind_of("base"), tiny());
    assert_eq!(base.swaps, 0);
    assert_eq!(base.dgroup_accesses, 0);
}
