//! Property-based tests on the core invariants (DESIGN.md §7).

use bytes::BytesMut;
use memsys::lower::LowerCache;
use memsys::replacement::{PolicyKind, SetPolicy};
use nurapid::coupled::CoupledCache;
use nurapid::port::PortSchedule;
use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::{
    DistanceVictimPolicy, NuRapidCache, NuRapidConfig, PromotionPolicy,
};
use proptest::prelude::*;
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};

/// A random access trace: (block index, is_write) pairs over a bounded
/// footprint.
fn trace(max_block: u64) -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0..max_block, any::<bool>()), 1..400)
}

fn small_config(n_dgroups: usize) -> NuRapidConfig {
    let mut c = NuRapidConfig::micro2003(n_dgroups);
    c.capacity = Capacity::from_mib(1);
    c.assoc = 4;
    c
}

fn run_nurapid(cfg: NuRapidConfig, ops: &[(u64, bool)]) -> NuRapidCache {
    let mut cache = NuRapidCache::new(cfg);
    let mut t = Cycle::ZERO;
    for &(b, w) in ops {
        let kind = if w { AccessKind::Write } else { AccessKind::Read };
        let out = cache.access_block(BlockAddr::from_index(b), kind, t);
        t = out.complete_at + 1;
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tag/data bijection holds after any access sequence, for every
    /// d-group count and policy combination.
    #[test]
    fn tag_data_bijection_holds(
        ops in trace(30_000),
        n_dgroups in prop::sample::select(vec![2usize, 4, 8]),
        promo in prop::sample::select(vec![
            PromotionPolicy::DemotionOnly,
            PromotionPolicy::NextFastest,
            PromotionPolicy::Fastest,
        ]),
        victim in prop::sample::select(vec![
            DistanceVictimPolicy::Random,
            DistanceVictimPolicy::Lru,
        ]),
    ) {
        let cfg = small_config(n_dgroups)
            .with_promotion(promo)
            .with_distance_victim(victim);
        let cache = run_nurapid(cfg, &ops);
        cache.check_invariants();
    }

    /// Distance replacement never evicts: after touching fewer distinct
    /// blocks than the cache holds (without set conflicts beyond the
    /// associativity), every touched block still hits.
    #[test]
    fn distance_replacement_never_evicts(
        seed_ops in trace(6_000),
    ) {
        // 1-MB cache, 4-way, 2048 sets: a footprint of 6000 distinct
        // blocks puts at most ceil(6000/2048)=3 blocks in each set — under
        // the associativity, so data replacement never fires and only
        // distance replacement moves blocks.
        let mut cache = NuRapidCache::new(small_config(4));
        let mut t = Cycle::ZERO;
        let mut touched = std::collections::BTreeSet::new();
        for &(b, w) in &seed_ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access_block(BlockAddr::from_index(b), kind, t);
            t = out.complete_at + 1;
            touched.insert(b);
        }
        for &b in &touched {
            let out = cache.access_block(BlockAddr::from_index(b), AccessKind::Read, t);
            prop_assert!(out.hit, "block {b} was lost without eviction pressure");
            t = out.complete_at + 1;
        }
        cache.check_invariants();
    }

    /// Miss counts are identical across promotion policies and
    /// distance-victim policies (they only move data, never evict).
    #[test]
    fn miss_count_policy_invariance(ops in trace(40_000)) {
        let count = |cfg: NuRapidConfig| run_nurapid(cfg, &ops).stats().misses.get();
        let reference = count(small_config(4));
        prop_assert_eq!(
            count(small_config(4).with_promotion(PromotionPolicy::DemotionOnly)),
            reference
        );
        prop_assert_eq!(
            count(small_config(4).with_promotion(PromotionPolicy::Fastest)),
            reference
        );
        prop_assert_eq!(
            count(small_config(4).with_distance_victim(DistanceVictimPolicy::Lru)),
            reference
        );
    }

    /// Hits + misses equals accesses, and group-hit totals equal hits.
    #[test]
    fn accounting_identities(ops in trace(20_000)) {
        let cache = run_nurapid(small_config(4), &ops);
        let s = cache.stats();
        prop_assert_eq!(s.group_hits.total() + s.misses.get(), s.accesses.get());
        prop_assert_eq!(s.tag_probes.get(), s.accesses.get());
        // Every promotion and demotion is one read and one write somewhere.
        prop_assert!(s.group_writes.total() >= s.total_moves());
    }

    /// D-NUCA's smart-search candidates are a superset of the true
    /// location: a resident block is never missed because of the ss array.
    #[test]
    fn dnuca_smart_search_never_causes_false_misses(ops in trace(50_000)) {
        let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
        let mut t = Cycle::ZERO;
        let mut resident = std::collections::BTreeSet::new();
        let mut false_miss = false;
        for &(b, w) in &ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access(BlockAddr::from_index(b), kind, t);
            if resident.contains(&b) && !out.hit {
                false_miss = true;
            }
            // Track residency conservatively: a fill may evict another
            // block, so only blocks accessed twice in a row are asserted.
            resident.clear();
            resident.insert(b);
            t = out.complete_at + 1;
        }
        prop_assert!(!false_miss, "smart search produced a false miss");
    }

    /// D-NUCA conserves capacity: hits plus misses equals accesses and the
    /// position-hit histogram sums to the hit count.
    #[test]
    fn dnuca_accounting(ops in trace(20_000)) {
        let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsPerformance));
        let mut t = Cycle::ZERO;
        for &(b, w) in &ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access(BlockAddr::from_index(b), kind, t);
            t = out.complete_at + 1;
        }
        let s = cache.stats();
        prop_assert_eq!(s.position_hits.total() + s.misses.get(), s.accesses.get());
        prop_assert_eq!(s.ss_accesses.get(), s.accesses.get());
    }

    /// Port reservations never overlap and never start before requested,
    /// for quasi-monotonic request times (the out-of-order core's issue
    /// times wander by at most a window's worth of cycles — far less than
    /// the schedule's 4096-cycle pruning lag).
    #[test]
    fn port_reservations_are_disjoint(
        reqs in prop::collection::vec((0u64..300, 1u64..40), 1..200)
    ) {
        let mut port = PortSchedule::new();
        let mut granted: Vec<(u64, u64)> = Vec::new();
        for (i, &(jitter, dur)) in reqs.iter().enumerate() {
            let at = i as u64 * 15 + jitter;
            let start = port.reserve(Cycle::new(at), dur);
            prop_assert!(start.raw() >= at, "granted before requested");
            granted.push((start.raw(), start.raw() + dur));
        }
        granted.sort_unstable();
        for w in granted.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    /// Coupled and decoupled placement share the tag organization, so
    /// their miss streams are identical on any trace.
    #[test]
    fn coupled_and_decoupled_miss_identically(ops in trace(40_000)) {
        let mut decoupled = run_nurapid(small_config(4), &ops);
        let mut coupled = CoupledCache::new(Capacity::from_mib(1), 4, 4);
        let mut t = Cycle::ZERO;
        for &(b, w) in &ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = coupled.access_block(BlockAddr::from_index(b), kind, t);
            t = out.complete_at + 1;
        }
        prop_assert_eq!(
            coupled.stats().misses.get(),
            decoupled.stats().misses.get()
        );
        let _ = &mut decoupled;
    }

    /// Tree PLRU never victimizes the way touched most recently.
    #[test]
    fn tree_plru_spares_the_mru_way(
        touches in prop::collection::vec(0u32..8, 1..200)
    ) {
        let mut p = SetPolicy::new(PolicyKind::TreePlru, 1, 8, simbase::rng::SimRng::seeded(1));
        for &w in &touches {
            p.touch(0, w);
            prop_assert_ne!(p.victim(0), w);
        }
    }

    /// Trace encoding round-trips arbitrary well-formed micro-ops.
    #[test]
    fn trace_records_roundtrip(
        ops in prop::collection::vec(
            (0u8..7, any::<u8>(), any::<u8>(), any::<bool>(), any::<u64>(), any::<u64>()),
            1..100
        )
    ) {
        use cpu::uop::{MicroOp, OpClass};
        use workloads::tracefile::{read_op, write_op};
        let classes = [
            OpClass::IntAlu, OpClass::IntMul, OpClass::FpAlu, OpClass::FpMul,
            OpClass::Load, OpClass::Store, OpClass::Branch,
        ];
        let originals: Vec<MicroOp> = ops
            .iter()
            .map(|&(c, d1, d2, taken, pc, addr)| {
                let class = classes[c as usize];
                MicroOp {
                    class,
                    pc: simbase::Addr::new(pc),
                    mem_addr: class.is_mem().then_some(simbase::Addr::new(addr)),
                    dep1: d1,
                    dep2: d2,
                    taken,
                }
            })
            .collect();
        let mut buf = BytesMut::new();
        for op in &originals {
            write_op(&mut buf, op);
        }
        let mut bytes = buf.freeze();
        for want in &originals {
            prop_assert_eq!(&read_op(&mut bytes).unwrap(), want);
        }
    }

    /// Completion times never precede request times, in any organization.
    #[test]
    fn time_flows_forward(ops in trace(10_000)) {
        let mut nurapid = NuRapidCache::new(small_config(2));
        let mut dnuca = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
        let mut base = memsys::hierarchy::BaseHierarchy::micro2003();
        let mut t = Cycle::ZERO;
        for &(b, w) in &ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let block = BlockAddr::from_index(b);
            for out in [
                nurapid.access_block(block, kind, t),
                dnuca.access(block, kind, t),
                LowerCache::access(&mut base, block, kind, t),
            ] {
                prop_assert!(out.complete_at > t);
            }
            t += 3;
        }
    }
}
