//! Property-based tests on the core invariants (DESIGN.md §9), running on
//! the in-tree `simkit` engine — no external test dependencies.
//!
//! Each property replays the regression corpus first (including the legacy
//! `properties.proptest-regressions` file, whose digests are folded into
//! deterministic replay seeds), then a fixed, name-seeded random sweep.
//! A failure prints a shrunk counterexample and a `SIMKIT_SEED=0x...`
//! replay command, and is appended to `tests/simkit-regressions.txt`.

use memsys::bankq::{BankQueue, BankQueueParams, BankQueues};
use memsys::lower::LowerCache;
use memsys::replacement::{PolicyKind, SetPolicy};
use nuca::{DnucaCache, DnucaConfig, SearchPolicy};
use nurapid::coupled::CoupledCache;
use nurapid::port::PortSchedule;
use nurapid::{DistanceVictimPolicy, NuRapidCache, NuRapidConfig, PromotionPolicy};
use simbase::{AccessKind, BlockAddr, Capacity, Cycle};
use simkit::prop::{
    any_bool, any_u64, any_u8, checker, range_u32, range_u64, range_u8, select, vec_of, Checker,
    VecGen,
};

/// Every property replays both corpus files before its random sweep: the
/// new simkit-native file (written on failure) and the legacy proptest one.
fn prop(name: &str) -> Checker {
    checker(name)
        .cases(64)
        .corpus(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/simkit-regressions.txt"
        ))
        .corpus(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/properties.proptest-regressions"
        ))
}

/// A random access trace: (block index, is_write) pairs over a bounded
/// footprint.
fn trace(max_block: u64) -> VecGen<(simkit::prop::U64Range, simkit::prop::AnyBool)> {
    vec_of((range_u64(0, max_block), any_bool()), 1, 400)
}

fn small_config(n_dgroups: usize) -> NuRapidConfig {
    let mut c = NuRapidConfig::micro2003(n_dgroups);
    c.capacity = Capacity::from_mib(1);
    c.assoc = 4;
    c
}

fn run_nurapid(cfg: NuRapidConfig, ops: &[(u64, bool)]) -> NuRapidCache {
    let mut cache = NuRapidCache::new(cfg);
    let mut t = Cycle::ZERO;
    for &(b, w) in ops {
        let kind = if w { AccessKind::Write } else { AccessKind::Read };
        let out = cache.access_block(BlockAddr::from_index(b), kind, t);
        t = out.complete_at + 1;
    }
    cache
}

/// 1. The tag/data bijection holds after any access sequence, for every
/// d-group count and policy combination.
#[test]
fn tag_data_bijection_holds() {
    let gen = (
        trace(30_000),
        select(vec![2usize, 4, 8]),
        select(vec![
            PromotionPolicy::DemotionOnly,
            PromotionPolicy::NextFastest,
            PromotionPolicy::Fastest,
        ]),
        select(vec![DistanceVictimPolicy::Random, DistanceVictimPolicy::Lru]),
    );
    prop("tag_data_bijection_holds").check(&gen, |(ops, n_dgroups, promo, victim)| {
        let cfg = small_config(*n_dgroups)
            .with_promotion(*promo)
            .with_distance_victim(*victim);
        let cache = run_nurapid(cfg, ops);
        cache.check_invariants();
    });
}

/// 2. Distance replacement never evicts: after touching fewer distinct
/// blocks than the cache holds (without set conflicts beyond the
/// associativity), every touched block still hits.
#[test]
fn distance_replacement_never_evicts() {
    prop("distance_replacement_never_evicts").check(&trace(6_000), |seed_ops| {
        // 1-MB cache, 4-way, 2048 sets: a footprint of 6000 distinct
        // blocks puts at most ceil(6000/2048)=3 blocks in each set — under
        // the associativity, so data replacement never fires and only
        // distance replacement moves blocks.
        let mut cache = NuRapidCache::new(small_config(4));
        let mut t = Cycle::ZERO;
        let mut touched = std::collections::BTreeSet::new();
        for &(b, w) in seed_ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access_block(BlockAddr::from_index(b), kind, t);
            t = out.complete_at + 1;
            touched.insert(b);
        }
        for &b in &touched {
            let out = cache.access_block(BlockAddr::from_index(b), AccessKind::Read, t);
            assert!(out.hit, "block {b} was lost without eviction pressure");
            t = out.complete_at + 1;
        }
        cache.check_invariants();
    });
}

/// 3. Miss counts are identical across promotion policies and
/// distance-victim policies (they only move data, never evict).
#[test]
fn miss_count_policy_invariance() {
    prop("miss_count_policy_invariance").check(&trace(40_000), |ops| {
        let count = |cfg: NuRapidConfig| run_nurapid(cfg, ops).stats().misses.get();
        let reference = count(small_config(4));
        assert_eq!(
            count(small_config(4).with_promotion(PromotionPolicy::DemotionOnly)),
            reference
        );
        assert_eq!(
            count(small_config(4).with_promotion(PromotionPolicy::Fastest)),
            reference
        );
        assert_eq!(
            count(small_config(4).with_distance_victim(DistanceVictimPolicy::Lru)),
            reference
        );
    });
}

/// 4. Hits + misses equals accesses, and group-hit totals equal hits.
#[test]
fn accounting_identities() {
    prop("accounting_identities").check(&trace(20_000), |ops| {
        let cache = run_nurapid(small_config(4), ops);
        let s = cache.stats();
        assert_eq!(s.group_hits.total() + s.misses.get(), s.accesses.get());
        assert_eq!(s.tag_probes.get(), s.accesses.get());
        // Every promotion and demotion is one read and one write somewhere.
        assert!(s.group_writes.total() >= s.total_moves());
    });
}

/// 5. D-NUCA's smart-search candidates are a superset of the true
/// location: a resident block is never missed because of the ss array.
#[test]
fn dnuca_smart_search_never_causes_false_misses() {
    prop("dnuca_smart_search_never_causes_false_misses").check(&trace(50_000), |ops| {
        let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
        let mut t = Cycle::ZERO;
        let mut resident = std::collections::BTreeSet::new();
        let mut false_miss = false;
        for &(b, w) in ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access(BlockAddr::from_index(b), kind, t);
            if resident.contains(&b) && !out.hit {
                false_miss = true;
            }
            // Track residency conservatively: a fill may evict another
            // block, so only blocks accessed twice in a row are asserted.
            resident.clear();
            resident.insert(b);
            t = out.complete_at + 1;
        }
        assert!(!false_miss, "smart search produced a false miss");
    });
}

/// 6. D-NUCA conserves capacity: hits plus misses equals accesses and the
/// position-hit histogram sums to the hit count.
#[test]
fn dnuca_accounting() {
    prop("dnuca_accounting").check(&trace(20_000), |ops| {
        let mut cache = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsPerformance));
        let mut t = Cycle::ZERO;
        for &(b, w) in ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access(BlockAddr::from_index(b), kind, t);
            t = out.complete_at + 1;
        }
        let s = cache.stats();
        assert_eq!(s.position_hits.total() + s.misses.get(), s.accesses.get());
        assert_eq!(s.ss_accesses.get(), s.accesses.get());
    });
}

fn assert_port_reservations_disjoint(reqs: &[(u64, u64)]) {
    let mut port = PortSchedule::new();
    let mut granted: Vec<(u64, u64)> = Vec::new();
    for (i, &(jitter, dur)) in reqs.iter().enumerate() {
        let at = i as u64 * 15 + jitter;
        let start = port.reserve(Cycle::new(at), dur);
        assert!(start.raw() >= at, "granted before requested");
        granted.push((start.raw(), start.raw() + dur));
    }
    granted.sort_unstable();
    for w in granted.windows(2) {
        assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
    }
}

/// 7. Port reservations never overlap and never start before requested,
/// for quasi-monotonic request times (the out-of-order core's issue
/// times wander by at most a window's worth of cycles — far less than
/// the schedule's 4096-cycle pruning lag).
#[test]
fn port_reservations_are_disjoint() {
    let gen = vec_of((range_u64(0, 300), range_u64(1, 40)), 1, 200);
    prop("port_reservations_are_disjoint").check(&gen, |reqs| {
        assert_port_reservations_disjoint(reqs);
    });
}

/// 8. The shrunk counterexample proptest recorded in
/// `properties.proptest-regressions` (`cc 587c7486...`), pinned verbatim:
/// a large out-of-order jitter between two early requests once broke the
/// disjointness of port grants. Kept as an explicit regression because the
/// legacy digest cannot be mapped back to a generator case without
/// proptest itself.
#[test]
fn port_reservations_proptest_regression_case() {
    assert_port_reservations_disjoint(&[(178, 8), (4282, 1), (161, 18)]);
}

/// 9. Coupled and decoupled placement share the tag organization, so
/// their miss streams are identical on any trace.
#[test]
fn coupled_and_decoupled_miss_identically() {
    prop("coupled_and_decoupled_miss_identically").check(&trace(40_000), |ops| {
        let decoupled = run_nurapid(small_config(4), ops);
        let mut coupled = CoupledCache::new(Capacity::from_mib(1), 4, 4);
        let mut t = Cycle::ZERO;
        for &(b, w) in ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let out = coupled.access_block(BlockAddr::from_index(b), kind, t);
            t = out.complete_at + 1;
        }
        assert_eq!(coupled.stats().misses.get(), decoupled.stats().misses.get());
    });
}

/// 10. Tree PLRU never victimizes the way touched most recently.
#[test]
fn tree_plru_spares_the_mru_way() {
    prop("tree_plru_spares_the_mru_way").check(&vec_of(range_u32(0, 8), 1, 200), |touches| {
        let mut p = SetPolicy::new(PolicyKind::TreePlru, 1, 8, simbase::rng::SimRng::seeded(1));
        for &w in touches {
            p.touch(0, w);
            assert_ne!(p.victim(0), w);
        }
    });
}

/// 11. Trace encoding round-trips arbitrary well-formed micro-ops.
#[test]
fn trace_records_roundtrip() {
    use cpu::uop::{MicroOp, OpClass};
    use workloads::tracefile::{read_op, write_op};
    let gen = vec_of(
        (
            range_u8(0, 7),
            any_u8(),
            any_u8(),
            any_bool(),
            any_u64(),
            any_u64(),
        ),
        1,
        100,
    );
    prop("trace_records_roundtrip").check(&gen, |ops| {
        let classes = [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::FpAlu,
            OpClass::FpMul,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
        ];
        let originals: Vec<MicroOp> = ops
            .iter()
            .map(|&(c, d1, d2, taken, pc, addr)| {
                let class = classes[c as usize];
                MicroOp {
                    class,
                    pc: simbase::Addr::new(pc),
                    mem_addr: class.is_mem().then_some(simbase::Addr::new(addr)),
                    dep1: d1,
                    dep2: d2,
                    taken,
                }
            })
            .collect();
        let mut buf = Vec::new();
        for op in &originals {
            write_op(&mut buf, op);
        }
        let mut cursor = buf.as_slice();
        for want in &originals {
            assert_eq!(&read_op(&mut cursor).unwrap(), want);
        }
        assert!(cursor.is_empty());
    });
}

/// 12. Completion times never precede request times, in any organization.
#[test]
fn time_flows_forward() {
    prop("time_flows_forward").check(&trace(10_000), |ops| {
        let mut nurapid = NuRapidCache::new(small_config(2));
        let mut dnuca = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::SsEnergy));
        let mut base = memsys::hierarchy::BaseHierarchy::micro2003();
        let mut t = Cycle::ZERO;
        for &(b, w) in ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let block = BlockAddr::from_index(b);
            for out in [
                nurapid.access_block(block, kind, t),
                dnuca.access(block, kind, t),
                LowerCache::access(&mut base, block, kind, t),
            ] {
                assert!(out.complete_at > t);
            }
            t += 3;
        }
    });
}

/// 13. The compressibility model is a pure function of (seed, address):
/// sizes come from the fixed class ladder and never exceed the frame,
/// repeated queries agree, the compressible predicate is exactly the
/// half-frame cut, and decompression latency is zero precisely for raw
/// blocks (never negative — it is `decomp_cycles` or nothing).
#[test]
fn compress_model_is_pure_and_bounded() {
    use cachemodel::catalog::BLOCK_BYTES;
    use nuca::CompressModel;
    let gen = (any_u64(), range_u64(0, 30), vec_of(any_u64(), 1, 200));
    prop("compress_model_is_pure_and_bounded").check(&gen, |(seed, decomp, addrs)| {
        let model = CompressModel::new(*seed);
        for &a in addrs {
            let block = BlockAddr::from_index(a);
            let bytes = model.compressed_bytes(block);
            assert!(
                [16, 32, 64, BLOCK_BYTES].contains(&bytes),
                "unknown size class {bytes}"
            );
            assert!(bytes <= BLOCK_BYTES, "compression must never expand");
            assert_eq!(bytes, model.compressed_bytes(block), "not idempotent");
            assert_eq!(model.is_compressible(block), bytes * 2 <= BLOCK_BYTES);
            let lat = model.decompress_cycles(block, *decomp);
            assert_eq!(lat, if model.is_compressible(block) { *decomp } else { 0 });
        }
    });
}

/// 14. Way memoization is an energy policy, not an architectural one: on
/// any trace its hit/miss stream and miss count equal the smart-search
/// policies', and every memo hit skips the smart-search probe — the
/// stats obey `ss_accesses + memo_hits = accesses` exactly, with one
/// memo lookup per access.
#[test]
fn way_memo_skips_probes_without_changing_transitions() {
    prop("way_memo_skips_probes_without_changing_transitions").check(
        &trace(100_000),
        |ops| {
            let run = |policy| {
                let mut c = DnucaCache::new(DnucaConfig::micro2003(policy));
                let mut t = Cycle::ZERO;
                let mut hits = Vec::with_capacity(ops.len());
                for &(b, w) in ops {
                    let kind = if w { AccessKind::Write } else { AccessKind::Read };
                    let out = c.access(BlockAddr::from_index(b), kind, t);
                    hits.push(out.hit);
                    t = out.complete_at + 1;
                }
                (hits, c)
            };
            let (hits_perf, _) = run(SearchPolicy::SsPerformance);
            let (hits_memo, memo) = run(SearchPolicy::WayMemo);
            assert_eq!(hits_perf, hits_memo, "policy changed the hit/miss stream");
            let s = memo.stats();
            assert_eq!(s.memo_lookups.get(), s.accesses.get());
            assert_eq!(
                s.ss_accesses.get() + s.memo_hits.get(),
                s.accesses.get(),
                "every memo hit must skip exactly one smart-search probe"
            );
        },
    );
}

/// 16. An idle bank is free: arrivals spaced at least one service
/// interval apart never find the bank busy, so the queue model charges
/// zero delay and counts zero conflicts — contention only ever comes
/// from genuine bandwidth oversubscription, never from the model itself.
#[test]
fn bank_queue_spaced_arrivals_are_free() {
    let gen = (range_u64(1, 16), vec_of(range_u64(0, 100), 1, 200));
    prop("bank_queue_spaced_arrivals_are_free").check(&gen, |(service, extras)| {
        let mut b = BankQueue::new(BankQueueParams {
            service_cycles: *service,
            max_delay: 64,
        });
        let mut t = 0u64;
        for &extra in extras {
            assert_eq!(b.occupy(Cycle::new(t)), 0, "idle bank charged a delay");
            t += *service + extra;
        }
        assert_eq!((b.conflicts(), b.stall_cycles()), (0, 0));
        assert_eq!(b.accesses(), extras.len() as u64);
    });
}

/// 17. Delay is monotone non-decreasing with load: within a same-cycle
/// burst the k-th access waits exactly k service intervals, capped at
/// `max_delay`, and the charged stall cycles account for every delay.
#[test]
fn bank_queue_delay_is_monotone_in_load() {
    let gen = (range_u64(1, 16), range_u64(1, 128), range_u64(2, 40));
    prop("bank_queue_delay_is_monotone_in_load").check(&gen, |(service, max_delay, burst)| {
        let mut b = BankQueue::new(BankQueueParams {
            service_cycles: *service,
            max_delay: *max_delay,
        });
        let mut last = 0u64;
        let mut total = 0u64;
        for k in 0..*burst {
            let d = b.occupy(Cycle::new(0));
            assert!(d >= last, "delay shrank as load grew");
            assert_eq!(d, (k * service).min(*max_delay), "burst delay is k·service, capped");
            last = d;
            total += d;
        }
        assert_eq!(b.stall_cycles(), total);
        assert_eq!(b.conflicts(), *burst - 1, "all but the burst head conflict");
    });
}

/// 18. The bank array is a pure function of its traffic: two identical
/// arrays fed the same (block, arrival) trace charge identical delays
/// and counters, every delay respects the bound, and the drain barrier
/// leaves the banks idle without touching the counters.
#[test]
fn bank_queues_are_deterministic_and_account_exactly() {
    let gen = (
        select(vec![1usize, 2, 4, 32]),
        vec_of((range_u64(0, 4_096), range_u64(0, 12)), 1, 300),
    );
    prop("bank_queues_are_deterministic_and_account_exactly").check(&gen, |(n_banks, ops)| {
        let params = BankQueueParams::micro2003(128);
        let mut a = BankQueues::new(*n_banks, params);
        let mut b = BankQueues::new(*n_banks, params);
        let mut t = 0u64;
        let (mut sum, mut n_conflicts) = (0u64, 0u64);
        for &(blk, dt) in ops {
            t += dt;
            let block = BlockAddr::from_index(blk);
            let da = a.occupy(block, Cycle::new(t));
            let db = b.occupy(block, Cycle::new(t));
            assert_eq!(da, db, "identical bank arrays diverged on identical traffic");
            assert!(da <= params.max_delay);
            sum += da;
            n_conflicts += u64::from(da > 0);
        }
        assert_eq!(a.stall_cycles(), sum);
        assert_eq!(a.conflicts(), n_conflicts);
        a.drain();
        assert_eq!(
            a.occupy(BlockAddr::from_index(0), Cycle::new(t)),
            0,
            "drained banks must be idle"
        );
    });
}

/// 19. Pinned bank-queue regression: a same-cycle burst followed by a
/// straggler inside the busy window and a late arrival past it, with the
/// exact delays the history model must produce (service 8, bound 64).
/// Kept verbatim so a queue-model rewrite cannot silently re-time the
/// CMP experiment.
#[test]
fn bank_queue_pinned_regression_case() {
    let mut b = BankQueue::new(BankQueueParams { service_cycles: 8, max_delay: 64 });
    let delays: Vec<u64> =
        [0u64, 0, 0, 4, 30, 30, 95].iter().map(|&t| b.occupy(Cycle::new(t))).collect();
    assert_eq!(delays, vec![0, 8, 16, 20, 2, 10, 0]);
    assert_eq!(b.conflicts(), 5);
    assert_eq!(b.stall_cycles(), 56);
}

/// 15. The memo table is invalidated on eviction: once the memoized
/// block is demoted back to the slowest position and evicted by
/// conflicting fills, the next access to it must miss — a stale memo
/// entry may waste a probe but can never manufacture a hit.
#[test]
fn way_memo_eviction_invalidates_cleanly() {
    let gen = (range_u64(0, 4_095), range_u64(2, 40));
    prop("way_memo_eviction_invalidates_cleanly").check(&gen, |(set_index, fills)| {
        let mut c = DnucaCache::new(DnucaConfig::micro2003(SearchPolicy::WayMemo));
        let sets = 4_096u64; // 8 MB / 16-way / 128-B blocks
        let mut t = Cycle::ZERO;
        let access = |c: &mut DnucaCache, b: u64, t: &mut Cycle| {
            let out = c.access(BlockAddr::from_index(b), AccessKind::Read, *t);
            *t = out.complete_at + 1;
            out.hit
        };
        // Memoize the victim: fill, then hit (promoting it one position
        // off the slowest bank, with the memo pointing at it).
        let victim = *set_index;
        access(&mut c, victim, &mut t);
        assert!(access(&mut c, victim, &mut t), "victim must be resident");
        // Demote it back to the slowest position: two other blocks bubble
        // through the adjacent position, swapping the (LRU) victim down.
        for k in 1..=2 {
            let conflicting = set_index + k * sets;
            access(&mut c, conflicting, &mut t);
            access(&mut c, conflicting, &mut t);
        }
        // Conflicting fills now evict the slowest-position LRU: the victim.
        for k in 3..3 + fills {
            access(&mut c, set_index + k * sets, &mut t);
        }
        assert!(
            !access(&mut c, victim, &mut t),
            "stale memo entry manufactured a hit after eviction"
        );
    });
}
