//! Property suite for the consistent-hashing bank map behind the L4
//! DRAM cache (`memsys::chash`, DESIGN.md §15).
//!
//! The resizable L4 is only safe to resize live because of three map
//! invariants, pinned here exactly (not statistically):
//!
//! 1. **Grow moves keys only onto the new banks** — a key whose owner
//!    changed must land on a bank added by that resize.
//! 2. **Shrink moves only the retired banks' keys** — a key owned by a
//!    surviving bank keeps that owner bit-for-bit.
//! 3. **Grow-then-shrink restores the map** — retirement is LIFO, so
//!    returning to the old bank count returns every key to its old
//!    owner.
//!
//! On top of the exact laws, the expected remap fraction (`k / (n + k)`
//! when growing by `k`) is asserted with generous slack, and the
//! snapshot codec is round-tripped through resize history.
//!
//! Failures are appended to `tests/chash-regressions.txt` and replayed
//! before every random sweep.

use memsys::chash::BankMap;
use simbase::snapshot::{Decoder, Encoder};
use simkit::prop::{any_u64, checker, range_u32, select, vec_of, Checker};

fn prop(name: &str) -> Checker {
    checker(name)
        .cases(64)
        .corpus(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/chash-regressions.txt"))
}

/// Keys probed against every map: enough for the statistical bound to
/// concentrate, fixed so corpus seeds replay the identical case.
const KEYS: u64 = 2_000;

fn owners(map: &BankMap) -> Vec<u32> {
    (0..KEYS).map(|b| map.lookup(b)).collect()
}

/// Map geometry generator: initial banks, resize step, vnode count, seed.
fn geometry() -> (
    simkit::prop::U32Range,
    simkit::prop::U32Range,
    simkit::prop::Select<u32>,
    simkit::prop::AnyU64,
) {
    (range_u32(1, 12), range_u32(1, 8), select(vec![1u32, 8, 32]), any_u64())
}

#[test]
fn grow_moves_keys_only_onto_new_banks() {
    prop("grow_moves_keys_only_onto_new_banks").check(&geometry(), |&(n, k, vnodes, seed)| {
        let mut map = BankMap::new(n, vnodes, seed);
        let before = owners(&map);
        let delta = map.resize(n + k);
        assert_eq!(delta.added.len(), k as usize);
        assert!(delta.retired.is_empty());
        let mut moved = 0u64;
        for (b, old) in before.iter().enumerate() {
            let now = map.lookup(b as u64);
            if now != *old {
                moved += 1;
                assert!(
                    delta.added.contains(&now),
                    "key {b} moved {old} -> {now}, not a new bank {:?}",
                    delta.added
                );
            }
        }
        // Expected remap fraction k/(n+k); allow wide hashing variance.
        let expected = f64::from(k) / f64::from(n + k);
        let frac = moved as f64 / KEYS as f64;
        assert!(
            frac <= expected * 2.5 + 0.05,
            "grow {n}+{k} moved {frac:.3} of keys (expected ~{expected:.3})"
        );
    });
}

#[test]
fn shrink_moves_only_the_retired_banks_keys() {
    prop("shrink_moves_only_the_retired_banks_keys").check(&geometry(), |&(n, k, vnodes, seed)| {
        let mut map = BankMap::new(n + k, vnodes, seed);
        let before = owners(&map);
        let delta = map.resize(n);
        assert_eq!(delta.retired.len(), k as usize);
        assert!(delta.added.is_empty());
        let mut moved = 0u64;
        for (b, old) in before.iter().enumerate() {
            let now = map.lookup(b as u64);
            if delta.retired.contains(old) {
                moved += 1;
                assert!(!delta.retired.contains(&now), "key {b} remapped to a retired bank");
            } else {
                assert_eq!(now, *old, "key {b} moved although bank {old} survived");
            }
        }
        let expected = f64::from(k) / f64::from(n + k);
        let frac = moved as f64 / KEYS as f64;
        assert!(
            frac <= expected * 2.5 + 0.05,
            "shrink {}->{n} moved {frac:.3} of keys (expected ~{expected:.3})",
            n + k
        );
    });
}

#[test]
fn grow_then_shrink_restores_every_owner() {
    prop("grow_then_shrink_restores_every_owner").check(&geometry(), |&(n, k, vnodes, seed)| {
        let mut map = BankMap::new(n, vnodes, seed);
        let before = owners(&map);
        map.resize(n + k);
        map.resize(n);
        // Retirement is LIFO: the shrink retires exactly the banks the
        // grow added, so the live set — and every lookup — is restored.
        assert_eq!(owners(&map), before);
        assert_eq!(map.n_banks(), n);
        // Ids are never reused: a second grow allocates fresh ones.
        let again = map.resize(n + 1);
        assert!(again.added[0] >= n + k, "bank id {} was reused", again.added[0]);
    });
}

#[test]
fn snapshot_roundtrip_preserves_resize_history() {
    let gen = (geometry(), vec_of(range_u32(1, 16), 0, 6));
    prop("snapshot_roundtrip_preserves_resize_history").check(
        &gen,
        |((n, _k, vnodes, seed), targets)| {
            let mut map = BankMap::new(*n, *vnodes, *seed);
            for &t in targets {
                map.resize(t);
            }
            let mut e = Encoder::new();
            map.save_state(&mut e);
            let bytes = e.into_bytes();

            // Same geometry: the restored map equals the live one.
            let mut fresh = BankMap::new(*n, *vnodes, *seed);
            let mut d = Decoder::new(&bytes);
            fresh.load_state(&mut d).expect("roundtrip");
            d.finish().expect("no trailing bytes");
            assert_eq!(fresh, map);
            assert_eq!(owners(&fresh), owners(&map));

            // Different geometry: the blob is rejected, never misread.
            let mut skewed = BankMap::new(*n, *vnodes, seed ^ 1);
            assert!(skewed.load_state(&mut Decoder::new(&bytes)).is_err());

            // Any strict prefix is malformed, not silently short.
            if !bytes.is_empty() {
                let mut fresh = BankMap::new(*n, *vnodes, *seed);
                let cut = bytes.len() / 2;
                assert!(
                    fresh.load_state(&mut Decoder::new(&bytes[..cut])).is_err(),
                    "truncation at {cut} decoded"
                );
            }
        },
    );
}
