//! The billion-instruction acceptance run (DESIGN.md §16): one
//! `Scale::huge` NuRAPID run estimated by periodic sampling must finish
//! in minutes of wall clock, not the hours a full-detail run of the
//! same budget would take — the whole point of the sampler.
//!
//! Ignored in debug builds like the golden sweeps (a billion functional
//! instructions through an unoptimized build is not "minutes"); CI runs
//! it explicitly with `cargo test --release -q --test sampling_huge`.

use experiments::{run_app_sampled, L2Kind, RunOptions, SampleSpec, Scale};
use nurapid::NuRapidConfig;
use std::time::Instant;
use workloads::profiles::by_name;

#[test]
#[cfg_attr(debug_assertions, ignore = "1B functional instructions need an optimized build")]
fn billion_instruction_sampled_run_completes_in_minutes() {
    let scale = Scale::huge();
    let spec = SampleSpec::for_scale(scale);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let t0 = Instant::now();
    let run = run_app_sampled(
        by_name("equake").expect("in roster"),
        &L2Kind::NuRapid(NuRapidConfig::micro2003(4)),
        scale,
        spec,
        8,
        threads,
        RunOptions::default(),
    );
    let wall = t0.elapsed();
    eprintln!(
        "[huge] 1B-instruction sampled run: {:.1}s wall, {} windows, \
         speedup {:.0}x, IPC {:.3} ± {:.3}",
        wall.as_secs_f64(),
        run.windows.len(),
        run.speedup(),
        run.ipc().mean,
        run.ipc().ci95,
    );

    // The full measured budget was covered (every window observed its
    // slice of the 1B instructions), at a detailed-instruction reduction
    // far past the ≥20× target, with a sane, tight estimate.
    assert_eq!(run.windows.len() as u64, spec.windows(scale));
    let measured: u64 = run.windows.iter().map(|w| w.core.instructions).sum();
    assert_eq!(measured, spec.windows(scale) * spec.measure);
    assert!(run.speedup() >= 20.0, "speedup {:.1}x below the 20x target", run.speedup());
    let ipc = run.ipc();
    assert!(ipc.mean > 0.1 && ipc.mean < 4.0, "implausible IPC {}", ipc.mean);
    // "Minutes": generous for slow shared runners, but hard enough that
    // an accidental full-detail fallback (hours at this budget) fails.
    assert!(wall.as_secs() < 1200, "huge sampled run took {:.0}s", wall.as_secs_f64());
}
