//! Steady-state allocation guard — the fourth leg of the Organization
//! conformance contract (see `tests/organization_conformance.rs`): after
//! warm-up, the per-access hot path of **every** organization the
//! [`L2Kind::build`] factory produces must not touch the heap at all.
//!
//! The flat-arena rewrite removed the per-access `Vec` churn the original
//! implementations carried (candidate lists in the D-NUCA search paths,
//! recency reordering in the naive LRU, `VecDeque` pruning in the port
//! schedule). This test pins that property with a counting global
//! allocator: drive each organization past its warm-up transient (free
//! lists drained, port-schedule and run buffers at their high-water
//! capacity), then require the allocation count to stay *exactly* flat
//! over a long measured window.
//!
//! The whole file is a single `#[test]` because the counter is
//! process-global: parallel test threads would attribute their setup
//! allocations to whichever window happens to be open.

use experiments::L2Kind;
use memsys::org::Organization;
use nuca::{CnucaConfig, SearchPolicy};
use nurapid::NuRapidConfig;
use simbase::{AccessKind, BlockAddr, Cycle};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A deterministic mixed read/write stream with enough footprint to keep
/// hits, misses, evictions, demotion chains, and promotions all live.
fn drive(cache: &mut Box<dyn Organization>, accesses: u64, footprint: u64) -> Cycle {
    let mut t = Cycle::ZERO;
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..accesses {
        // xorshift: cheap, allocation-free, full-period enough here.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let block = BlockAddr::from_index(x % footprint);
        let kind = if i % 3 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = cache.access(block, kind, t);
        t = out.complete_at + 1;
    }
    t
}

fn measure(name: &str, cache: &mut Box<dyn Organization>, footprint: u64) {
    // Warm-up: fill the cache, drain every free list, and let internal
    // buffers (port schedule, memory queue) reach steady capacity.
    drive(cache, 150_000, footprint);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    drive(cache, 40_000, footprint);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "{name}: {} heap allocations in 40k steady-state accesses",
        after - before
    );
}

#[test]
fn steady_state_access_paths_do_not_allocate() {
    // Footprint 4x the 8-MB block count so misses, tag evictions, and
    // full demotion/promotion chains fire constantly. The base
    // hierarchy's smaller L2/L3 thrash even harder, which is the point.
    let roster: [(&str, L2Kind); 7] = [
        ("base", L2Kind::Base),
        ("nurapid", L2Kind::NuRapid(NuRapidConfig::micro2003(4))),
        ("coupled", L2Kind::Coupled(4)),
        ("dnuca-ss-performance", L2Kind::Dnuca(SearchPolicy::SsPerformance)),
        ("dnuca-ss-energy", L2Kind::Dnuca(SearchPolicy::SsEnergy)),
        ("dnuca-way-memo", L2Kind::Dnuca(SearchPolicy::WayMemo)),
        ("cnuca", L2Kind::Cnuca(CnucaConfig::micro2003())),
    ];
    for (name, kind) in roster {
        let mut org = kind.build();
        org.prefill();
        measure(name, &mut org, 262_144);
    }

    // The L4 DRAM-cache tier joins the contract: after a shrink (which
    // may allocate while it retires banks and flushes dirty blocks) and
    // a grow (which allocates the fresh banks), the steady-state access
    // path through the resized tier — tag-cache probes, ring lookups,
    // fills into live banks, orphaned blocks aging out — must stay
    // allocation-free. One representative inner organization suffices:
    // the tier wraps every roster entry through the same MainMemory
    // entry points.
    let kind = L2Kind::L4(
        Box::new(L2Kind::NuRapid(NuRapidConfig::micro2003(4))),
        experiments::L4Config::tdram(),
    );
    let mut org = kind.build();
    org.prefill();
    drive(&mut org, 100_000, 262_144);
    let resize = |org: &mut Box<dyn Organization>, target: u32| {
        org.main_memory_mut()
            .expect("the L4 wrapper is DRAM-backed")
            .resize_l4(target, Cycle::ZERO);
    };
    resize(&mut org, 4);
    resize(&mut org, 12);
    measure("nurapid+l4 after shrink+grow", &mut org, 262_144);
}
