//! Cross-organization conformance suite: the [`Organization`] contract
//! (DESIGN.md §12), enforced against **every** organization the
//! [`L2Kind::build`] factory can produce — the base hierarchy, NuRAPID,
//! the coupled set-associative ablation, all three D-NUCA search
//! policies, and compressed NUCA.
//!
//! Every test iterates the same roster through `Box<dyn Organization>`,
//! never naming a concrete cache type: a new organization registered in
//! the factory is covered by this file automatically. The fourth leg of
//! the contract — zero steady-state heap allocation — lives in
//! `tests/no_alloc.rs` because it needs a process-global counting
//! allocator.

use experiments::L2Kind;
use memsys::org::{OrgReport, Organization};
use nuca::{CnucaConfig, SearchPolicy};
use nurapid::NuRapidConfig;
use simbase::snapshot::{Decoder, Encoder};
use simbase::{AccessKind, BlockAddr, Cycle};

/// Every organization the experiments factory can build, by display name.
fn roster() -> Vec<(&'static str, L2Kind)> {
    vec![
        ("base", L2Kind::Base),
        ("nurapid", L2Kind::NuRapid(NuRapidConfig::micro2003(4))),
        ("coupled", L2Kind::Coupled(4)),
        ("dnuca-ss-performance", L2Kind::Dnuca(SearchPolicy::SsPerformance)),
        ("dnuca-ss-energy", L2Kind::Dnuca(SearchPolicy::SsEnergy)),
        ("dnuca-way-memo", L2Kind::Dnuca(SearchPolicy::WayMemo)),
        ("cnuca", L2Kind::Cnuca(CnucaConfig::micro2003())),
    ]
}

/// Deterministic mixed read/write stream over a footprint large enough to
/// produce hits, misses, evictions, and promotions in every organization.
/// Returns the per-access outcomes `(complete_at, hit)` for comparison.
fn drive(
    org: &mut Box<dyn Organization>,
    accesses: u64,
    start: Cycle,
) -> (Vec<(Cycle, bool)>, Cycle) {
    const FOOTPRINT: u64 = 262_144; // 32 MB of 128-B blocks
    let mut t = start;
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut outcomes = Vec::with_capacity(accesses as usize);
    for i in 0..accesses {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let block = BlockAddr::from_index(x % FOOTPRINT);
        let kind = if i % 3 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = org.access(block, kind, t);
        outcomes.push((out.complete_at, out.hit));
        t = out.complete_at + 1;
    }
    (outcomes, t)
}

/// The same stream through the functional warm path (no timing).
fn warm_drive(org: &mut Box<dyn Organization>, accesses: u64) {
    const FOOTPRINT: u64 = 262_144;
    let mut x = 0x5eed_5eed_5eed_5eedu64;
    for i in 0..accesses {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let block = BlockAddr::from_index(x % FOOTPRINT);
        let kind = if i % 4 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        org.warm_access(block, kind);
    }
}

/// Reconstructing an organization and replaying the same trace must
/// reproduce outcomes and the report bit for bit: no hidden global state,
/// wall-clock reads, or unseeded randomness anywhere in the roster.
#[test]
fn reconstruction_is_deterministic() {
    for (name, kind) in roster() {
        let run = || {
            let mut org = kind.build();
            org.prefill();
            warm_drive(&mut org, 4_000);
            org.drain_timing();
            org.reset_stats();
            let (outcomes, _) = drive(&mut org, 12_000, Cycle::ZERO);
            (outcomes, org.report())
        };
        let (out_a, rep_a) = run();
        let (out_b, rep_b) = run();
        assert_eq!(out_a, out_b, "{name}: outcomes diverged across reconstruction");
        assert_eq!(rep_a, rep_b, "{name}: reports diverged across reconstruction");
    }
}

/// Saving at the drain barrier and restoring into a freshly built twin
/// must continue exactly like the uninterrupted run — outcomes and the
/// measured-phase report both.
#[test]
fn snapshot_round_trip_matches_uninterrupted_run() {
    for (name, kind) in roster() {
        let mut org = kind.build();
        org.prefill();
        warm_drive(&mut org, 4_000);
        let (_, resume_at) = drive(&mut org, 6_000, Cycle::ZERO);

        // The snapshot covers architectural state only, so it is taken at
        // the drain barrier — exactly where the runner takes it.
        org.drain_timing();
        let mut e = Encoder::new();
        org.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut twin = kind.build();
        let mut d = Decoder::new(&bytes);
        twin.load_state(&mut d)
            .unwrap_or_else(|err| panic!("{name}: load_state failed: {err:?}"));
        d.finish()
            .unwrap_or_else(|err| panic!("{name}: trailing snapshot bytes: {err:?}"));

        org.reset_stats();
        twin.reset_stats();
        let (out_orig, _) = drive(&mut org, 6_000, resume_at);
        let (out_twin, _) = drive(&mut twin, 6_000, resume_at);
        assert_eq!(out_orig, out_twin, "{name}: restored twin diverged");
        assert_eq!(org.report(), twin.report(), "{name}: reports diverged after restore");
    }
}

/// A geometry-mismatched payload must be rejected, not silently loaded:
/// feeding one organization's snapshot to a different one errors for
/// every cross pair (this is the safety net under checkpoint keying).
#[test]
fn snapshots_do_not_load_across_organizations() {
    let snapshots: Vec<(&'static str, Vec<u8>)> = roster()
        .into_iter()
        .map(|(name, kind)| {
            let mut org = kind.build();
            org.prefill();
            let mut e = Encoder::new();
            org.save_state(&mut e);
            (name, e.into_bytes())
        })
        .collect();
    for (to_name, kind) in roster() {
        for (from_name, bytes) in &snapshots {
            if *from_name == to_name
                || (to_name.starts_with("dnuca") && from_name.starts_with("dnuca"))
            {
                continue; // D-NUCA policies share architectural state by design
            }
            let mut org = kind.build();
            let mut d = Decoder::new(bytes);
            let outcome = org.load_state(&mut d).and_then(|()| d.finish());
            assert!(
                outcome.is_err(),
                "{to_name} silently accepted a {from_name} snapshot"
            );
        }
    }
}

/// Demand counters must be monotone, consistent with each other, and the
/// report must reduce them coherently: misses never exceed accesses,
/// `miss_frac` matches the counters, and the d-group fractions plus the
/// miss fraction never sum past 1.
#[test]
fn stats_are_monotone_and_reports_coherent() {
    for (name, kind) in roster() {
        let mut org = kind.build();
        org.prefill();
        let mut t = Cycle::ZERO;
        let mut last_accesses = 0u64;
        let mut last_misses = 0u64;
        for round in 0..8 {
            let (_, next) = drive(&mut org, 2_000, t);
            t = next;
            let (a, m) = (org.accesses(), org.misses());
            assert!(a >= last_accesses && m >= last_misses, "{name}: counter went backwards");
            assert_eq!(a, last_accesses + 2_000, "{name}: accesses must count every access");
            assert!(m <= a, "{name}: more misses than accesses in round {round}");
            (last_accesses, last_misses) = (a, m);
        }
        let rep = org.report();
        assert_eq!(rep.l2_accesses, last_accesses, "{name}");
        assert_eq!(rep.l2_misses, last_misses, "{name}");
        assert!(
            (rep.miss_frac - last_misses as f64 / last_accesses as f64).abs() < 1e-12,
            "{name}: miss_frac inconsistent with counters"
        );
        let frac_sum: f64 = rep.group_fracs.iter().sum();
        assert!(
            frac_sum + rep.miss_frac <= 1.0 + 1e-9,
            "{name}: group fractions + miss fraction exceed 1 ({frac_sum} + {})",
            rep.miss_frac
        );
        assert!(rep.group_fracs.iter().all(|f| (0.0..=1.0).contains(f)), "{name}");
        assert!(rep.l2_energy.nj() >= 0.0, "{name}: negative energy");
    }
}

/// `reset_stats` zeroes everything feeding the report without touching
/// architectural state: the post-reset measured window must be identical
/// whether or not stats were reset mid-run.
#[test]
fn reset_stats_clears_the_report_but_not_the_cache() {
    for (name, kind) in roster() {
        let mut org = kind.build();
        org.prefill();
        let (_, t) = drive(&mut org, 5_000, Cycle::ZERO);
        org.reset_stats();
        let zero = org.report();
        assert_eq!(
            (zero.l2_accesses, zero.l2_misses, zero.dgroup_accesses, zero.swaps),
            (0, 0, 0, 0),
            "{name}: reset_stats left counters behind"
        );
        assert_eq!(zero.l2_energy.nj(), 0.0, "{name}: reset_stats left energy behind");

        // A twin that never resets takes the same transitions: resetting
        // statistics must not perturb the access stream's outcomes.
        let mut twin = kind.build();
        twin.prefill();
        let (_, t2) = drive(&mut twin, 5_000, Cycle::ZERO);
        assert_eq!(t, t2);
        let (out_reset, _) = drive(&mut org, 5_000, t);
        let (out_plain, _) = drive(&mut twin, 5_000, t);
        assert_eq!(out_reset, out_plain, "{name}: reset_stats changed behavior");
        assert_eq!(org.report().l2_accesses, 5_000, "{name}");
    }
}

/// Every organization in the factory roster must also conform under the
/// CMP front-end: two cores interleaving misses into one shared instance
/// stay deterministic across reconstruction, retire their full
/// instruction budget, and the bank/report accounting stays coherent.
/// A new organization registered in the factory is covered here
/// automatically, exactly like the single-core legs above.
#[test]
fn every_organization_conforms_under_the_cmp_front_end() {
    use cmp::{CmpConfig, CmpSystem};
    use simtel::TelemetrySink;
    let profiles: Vec<_> = ["galgel", "wupwise"]
        .iter()
        .map(|n| workloads::profiles::by_name(n).expect("in roster"))
        .collect();
    for (name, kind) in roster() {
        let run = || {
            let mut sys =
                CmpSystem::new(CmpConfig::micro2003(2), kind.build(), &profiles, 0x5eed);
            sys.warm_run(3_000);
            sys.drain_barrier(&TelemetrySink::disabled(), 0);
            sys.run(6_000);
            sys.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "{name}: CMP run diverged across reconstruction");
        assert_eq!(a.per_core.len(), 2, "{name}");
        for (i, core) in a.per_core.iter().enumerate() {
            assert!(core.instructions >= 6_000, "{name}: core {i} under-retired");
            assert!(core.cycles > 0 && core.ipc() > 0.0, "{name}: core {i} made no progress");
        }
        assert!(a.report.l2_accesses > 0, "{name}: the shared L2 saw no traffic");
        assert!(a.report.l2_misses <= a.report.l2_accesses, "{name}");
        assert_eq!(
            a.per_core_bank_stalls.iter().sum::<u64>(),
            a.bank_stall_cycles,
            "{name}: per-core bank stalls must sum to the total"
        );
        assert_eq!(
            a.bank_conflicts == 0,
            a.bank_stall_cycles == 0,
            "{name}: conflicts and stall cycles must agree on zero"
        );
        let fairness = a.fairness();
        assert!((0.0..=1.0 + 1e-9).contains(&fairness), "{name}: fairness {fairness} out of range");
    }
}

/// The roster again, each organization wrapped in a small L4 DRAM-cache
/// tier (DESIGN.md §15). Every contract leg below runs the full roster
/// through `Box<dyn Organization>` exactly like the plain legs, so a new
/// organization is covered with and without the tier automatically.
fn l4_roster() -> Vec<(String, L2Kind)> {
    // A deliberately small tier (4 banks x 64 sets x 4 ways, 64
    // tag-cache slots) so conformance-sized traces create evictions,
    // dirty flushes, and orphaned blocks around every resize.
    let mut cfg = memsys::dramcache::L4Config::tdram();
    cfg.n_banks = 4;
    cfg.bank_blocks = 256;
    cfg.assoc = 4;
    cfg.vnodes_per_bank = 8;
    cfg.tag_cache_entries = 64;
    roster()
        .into_iter()
        .map(|(name, kind)| (format!("{name}+l4"), L2Kind::L4(Box::new(kind), cfg.clone())))
        .collect()
}

/// Shrinks or grows the organization's L4 to `target` banks at `now`.
fn resize_l4(org: &mut Box<dyn Organization>, target: u32, now: Cycle) {
    org.main_memory_mut()
        .expect("the L4 roster is DRAM-backed")
        .resize_l4(target, now);
}

/// With the L4 tier attached, reconstruction stays deterministic even
/// when the measured stream straddles a shrink (orphaning resident
/// blocks and flushing dirty ones) and a grow (remapping onto fresh
/// banks): outcomes, the report, and every L4 counter reproduce bit for
/// bit.
#[test]
fn l4_reconstruction_is_deterministic_across_resizes() {
    for (name, kind) in l4_roster() {
        let run = || {
            let mut org = kind.build();
            org.prefill();
            warm_drive(&mut org, 4_000);
            org.drain_timing();
            org.reset_stats();
            let (mut outcomes, t) = drive(&mut org, 4_000, Cycle::ZERO);
            resize_l4(&mut org, 2, t);
            let (more, t) = drive(&mut org, 2_000, t);
            outcomes.extend(more);
            resize_l4(&mut org, 6, t);
            let (more, _) = drive(&mut org, 2_000, t);
            outcomes.extend(more);
            let l4 = org.main_memory().expect("DRAM-backed").l4_stats().expect("L4 attached");
            (outcomes, org.report(), l4)
        };
        let (out_a, rep_a, l4_a) = run();
        let (out_b, rep_b, l4_b) = run();
        assert_eq!(out_a, out_b, "{name}: outcomes diverged across reconstruction");
        assert_eq!(rep_a, rep_b, "{name}: reports diverged across reconstruction");
        assert_eq!(l4_a, l4_b, "{name}: L4 counters diverged across reconstruction");
        assert_eq!(l4_a.resizes, 2, "{name}: both resizes must be counted");
        assert!(l4_a.accesses > 0, "{name}: the L4 saw no traffic");
    }
}

/// The snapshot contract holds through a live resize: saving after a
/// shrink (with its eager dirty flush and orphaned survivors) and
/// restoring into a freshly built twin continues exactly like the
/// uninterrupted run.
#[test]
fn l4_snapshot_round_trip_survives_a_resize() {
    for (name, kind) in l4_roster() {
        let mut org = kind.build();
        org.prefill();
        warm_drive(&mut org, 4_000);
        let (_, t) = drive(&mut org, 4_000, Cycle::ZERO);
        resize_l4(&mut org, 2, t);
        let (_, resume_at) = drive(&mut org, 2_000, t);

        org.drain_timing();
        let mut e = Encoder::new();
        org.save_state(&mut e);
        let bytes = e.into_bytes();

        let mut twin = kind.build();
        let mut d = Decoder::new(&bytes);
        twin.load_state(&mut d)
            .unwrap_or_else(|err| panic!("{name}: load_state failed: {err:?}"));
        d.finish()
            .unwrap_or_else(|err| panic!("{name}: trailing snapshot bytes: {err:?}"));

        org.reset_stats();
        twin.reset_stats();
        let (out_orig, _) = drive(&mut org, 4_000, resume_at);
        let (out_twin, _) = drive(&mut twin, 4_000, resume_at);
        assert_eq!(out_orig, out_twin, "{name}: restored twin diverged");
        assert_eq!(org.report(), twin.report(), "{name}: reports diverged after restore");
        let stats = |o: &Box<dyn Organization>| o.main_memory().unwrap().l4_stats().unwrap();
        assert_eq!(stats(&org), stats(&twin), "{name}: L4 counters diverged after restore");
    }
}

/// An L4-enabled snapshot can never load into the same organization
/// without the tier, and vice versa: the magic-framed L4 section leaves
/// trailing bytes one way and truncates the other. This is the safety
/// net under checkpoint keying when the `--l4` flag flips between runs.
#[test]
fn l4_snapshots_do_not_cross_load_with_plain_ones() {
    for ((plain_name, plain_kind), (l4_name, l4_kind)) in roster().into_iter().zip(l4_roster()) {
        let snapshot = |kind: &L2Kind| {
            let mut org = kind.build();
            org.prefill();
            warm_drive(&mut org, 2_000);
            let mut e = Encoder::new();
            org.save_state(&mut e);
            e.into_bytes()
        };
        let plain_bytes = snapshot(&plain_kind);
        let l4_bytes = snapshot(&l4_kind);

        let mut org = plain_kind.build();
        let mut d = Decoder::new(&l4_bytes);
        let outcome = org.load_state(&mut d).and_then(|()| d.finish());
        assert!(outcome.is_err(), "{plain_name} silently accepted a {l4_name} snapshot");

        let mut org = l4_kind.build();
        let mut d = Decoder::new(&plain_bytes);
        let outcome = org.load_state(&mut d).and_then(|()| d.finish());
        assert!(outcome.is_err(), "{l4_name} silently accepted a {plain_name} snapshot");
    }
}

/// `reset_stats` across a resize zeroes every L4 counter (including the
/// resize and flush counts) while keeping the resized geometry and the
/// resident blocks: the post-reset stream is identical whether or not
/// stats were reset after the shrink.
#[test]
fn l4_reset_stats_clears_counters_but_keeps_the_resized_tier() {
    for (name, kind) in l4_roster() {
        let mut org = kind.build();
        org.prefill();
        let (_, t) = drive(&mut org, 4_000, Cycle::ZERO);
        resize_l4(&mut org, 2, t);
        org.reset_stats();
        let l4 = org.main_memory().unwrap().l4_stats().unwrap();
        assert_eq!(l4, memsys::dramcache::L4Stats::default(), "{name}: reset left L4 counters");
        assert_eq!(
            org.main_memory().unwrap().l4().unwrap().n_banks(),
            2,
            "{name}: reset must not undo the resize"
        );

        // A twin that never resets takes the same transitions.
        let mut twin = kind.build();
        twin.prefill();
        let (_, t2) = drive(&mut twin, 4_000, Cycle::ZERO);
        assert_eq!(t, t2);
        resize_l4(&mut twin, 2, t2);
        let (out_reset, _) = drive(&mut org, 4_000, t);
        let (out_plain, _) = drive(&mut twin, 4_000, t2);
        assert_eq!(out_reset, out_plain, "{name}: reset_stats changed behavior");
    }
}

/// The reports of distance-structured organizations expose their d-group
/// geometry; the base hierarchy reports none. This pins the shape the
/// table renderers rely on.
#[test]
fn report_shapes_match_the_organization() {
    let expected_groups = |rep: &OrgReport, name: &str| match name {
        "base" => assert!(rep.group_fracs.is_empty(), "base has no d-groups"),
        "nurapid" | "coupled" => assert_eq!(rep.group_fracs.len(), 4, "{name}"),
        _ => assert_eq!(rep.group_fracs.len(), 8, "{name}"),
    };
    for (name, kind) in roster() {
        let mut org = kind.build();
        org.prefill();
        let _ = drive(&mut org, 3_000, Cycle::ZERO);
        expected_groups(&org.report(), name);
    }
}
