//! The acceptance load test for the sweep-serving daemon: a thousand-plus
//! overlapping quick-scale requests from concurrent clients must all
//! receive byte-identical reports, the duplicate digest must be rendered
//! exactly once (the store's hit counters are the proof), and a graceful
//! drain must answer everything already admitted and exit cleanly with
//! no lost or duplicated responses.
//!
//! The daemon runs in-process on a loopback socket with a deliberately
//! tiny configuration (two applications, thousand-instruction scales) so
//! the test exercises the serving machinery, not simulation wall time.

use simbase::json::Json;
use simserve::{Client, ScaleName, ServeConfig, Server, Service, SweepReq};
use std::sync::Arc;
use workloads::profiles::by_name;

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 63;
const TOTAL: usize = CLIENTS * REQUESTS_PER_CLIENT; // 1008 — past the 1000-request bar

fn tiny_config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        apps: vec![by_name("galgel").expect("in roster"), by_name("wupwise").expect("in roster")],
        quick: experiments::Scale { warmup: 1_000, measure: 2_000 },
        full: experiments::Scale { warmup: 2_000, measure: 4_000 },
        quiet: true,
        ..ServeConfig::default()
    }
}

#[test]
fn a_thousand_overlapping_sweeps_coalesce_onto_one_rendering() {
    let service = Service::new(tiny_config()).expect("service");
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let stopper = server.stopper();
    let server_thread = std::thread::spawn(move || server.run());

    let req = SweepReq {
        exp: "fig4".to_string(),
        scale: ScaleName::Quick,
        tsv: false,
        cores: 0,
        watch: false,
        l4: false,
        sample: false,
        intervals: 1,
    };

    // The in-process expectation every served byte must match.
    let expected = {
        let cfg = tiny_config();
        let sweep = experiments::exps::Sweep::with_apps(cfg.quick, cfg.apps).with_threads(2);
        experiments::repro::render_selection(&["fig4"], &sweep, false)
    };

    // The barrage: every client hammers the same request; nothing is
    // primed, so the very first renderings race each other and the
    // single-flight store must pick exactly one winner.
    let results: Vec<(usize, String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let req = req.clone();
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let mut digests = Vec::new();
                    let mut report: Option<String> = None;
                    let mut fresh_seen = 0usize;
                    for _ in 0..REQUESTS_PER_CLIENT {
                        let out = client.sweep(&req).expect("sweep");
                        if out.fresh {
                            fresh_seen += 1;
                        }
                        match &report {
                            None => report = Some(out.report),
                            Some(first) => {
                                assert_eq!(*first, out.report, "client {c}: bytes diverged")
                            }
                        }
                        digests.push(out.digest);
                    }
                    assert_eq!(digests.len(), REQUESTS_PER_CLIENT, "client {c} lost responses");
                    digests.dedup();
                    assert_eq!(digests.len(), 1, "client {c} saw several digests");
                    (fresh_seen, digests.pop().expect("one digest"), report.expect("a report"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });

    // Cross-client identity: one digest, one byte sequence, everywhere —
    // and equal to the in-process rendering.
    let (_, first_digest, first_report) = &results[0];
    let mut fresh_total = 0usize;
    for (fresh, digest, report) in &results {
        assert_eq!(digest, first_digest, "digests diverged across clients");
        assert_eq!(report, first_report, "report bytes diverged across clients");
        fresh_total += fresh;
    }
    assert_eq!(*first_report, expected, "served report != in-process rendering");

    // Single-flight: of 1008 requests, exactly one computed.
    assert_eq!(fresh_total, 1, "duplicate digests must be computed exactly once");
    assert_eq!(service.reports_computed(), 1);
    assert_eq!(service.reports_coalesced(), (TOTAL - 1) as u64);

    // The daemon's own counters agree over the wire too.
    let mut probe = Client::connect(&addr).expect("probe connect");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.field("requests").and_then(Json::as_u64), Some(TOTAL as u64));
    assert_eq!(stats.field("reports_computed").and_then(Json::as_u64), Some(1));
    assert_eq!(
        stats.field("reports_coalesced").and_then(Json::as_u64),
        Some((TOTAL - 1) as u64)
    );

    // Clean drain: the server thread returns Ok(()) — the exit-0
    // contract — with every response already delivered above.
    probe.drain().expect("drain");
    drop(probe);
    stopper.stop(); // idempotent with the drain op; unblocks the accept loop promptly
    server_thread.join().expect("no panic").expect("clean drain");
}

#[test]
fn distinct_requests_share_underlying_runs_but_not_reports() {
    // Two different selections over the same configs: distinct report
    // digests, but the second must reuse the first's simulated runs
    // (the per-config single-flight below the report store).
    let service = Service::new(tiny_config()).expect("service");
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let stopper = server.stopper();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).expect("connect");
    let text = client
        .sweep(&SweepReq {
            exp: "fig4".into(),
            scale: ScaleName::Quick,
            tsv: false,
            cores: 0,
            watch: false,
            l4: false,
            sample: false,
            intervals: 1,
        })
        .expect("text sweep");
    let runs_after_text = {
        let stats = client.stats().expect("stats");
        stats.field("runs_quick").and_then(Json::as_u64).expect("runs_quick")
    };
    let tsv = client
        .sweep(&SweepReq {
            exp: "fig4".into(),
            scale: ScaleName::Quick,
            tsv: true,
            cores: 0,
            watch: false,
            l4: false,
            sample: false,
            intervals: 1,
        })
        .expect("tsv sweep");
    assert_ne!(text.digest, tsv.digest, "tsv must key a distinct report");
    assert_ne!(text.report, tsv.report);
    assert!(tsv.fresh, "distinct report digest must render fresh");
    let runs_after_tsv = {
        let stats = client.stats().expect("stats");
        stats.field("runs_quick").and_then(Json::as_u64).expect("runs_quick")
    };
    assert_eq!(
        runs_after_text, runs_after_tsv,
        "the TSV rendering must reuse the text rendering's runs"
    );

    client.shutdown().expect("shutdown");
    stopper.stop();
    server_thread.join().expect("no panic").expect("clean exit");
}
