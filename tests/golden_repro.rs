//! Golden end-to-end guard: the quick-scale reproduction report must be
//! byte-identical to the committed snapshot.
//!
//! This is the outermost layer of the differential test stack
//! (`tests/differential.rs` proves the flat-arena structures bit-identical
//! to the naive oracles; this test proves the *assembled system* — trace
//! generators, core, L1s, every L2 organization, the scheduler, and the
//! report renderers — produces exactly the output it did before any
//! hot-path rewrite). The snapshot was generated with:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- --quick --threads 4 \
//!     > tests/golden/repro_quick.txt
//! ```
//!
//! The report is bit-identical for any thread count, so the test runs on
//! however many workers the machine offers. To regenerate after an
//! *intentional* output change, rerun the command above and review the
//! diff — never regenerate to silence a failure you can't explain.

use experiments::repro::{render_report, render_selection};
use experiments::{exps::Sweep, Scale};

const GOLDEN: &str = include_str!("golden/repro_quick.txt");
const GOLDEN_DRAM: &str = include_str!("golden/dram_quick.txt");
const GOLDEN_SAMPLING: &str = include_str!("golden/sampling_quick.txt");

/// Runs the full quick-scale sweep in-process and compares the rendered
/// report against the committed golden snapshot, byte for byte.
///
/// Ignored in debug builds (a full quick-scale sweep of 15 applications
/// is minutes of debug-mode simulation); run it with
/// `cargo test --release --test golden_repro`.
#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep is slow unoptimized; run under --release")]
fn quick_report_matches_golden_snapshot() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweep = Sweep::new(Scale::quick()).with_threads(threads);
    let report = render_report(&sweep);
    if report != GOLDEN {
        // Find the first diverging line for a readable failure before the
        // full-text assert.
        for (i, (got, want)) in report.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(got, want, "report diverges from golden at line {}", i + 1);
        }
        assert_eq!(
            report.len(),
            GOLDEN.len(),
            "report and golden share {} lines but differ in length",
            GOLDEN.lines().count()
        );
        unreachable!("reports differ but no diverging line found");
    }
}

/// The `dram` resize-transient experiment against its own snapshot —
/// opt-in at the CLI (`--exp dram`, never part of `all`), so the main
/// golden above can't cover it. Regenerate with:
///
/// ```text
/// cargo run --release -p bench --bin repro -- --quick --exp dram \
///     > tests/golden/dram_quick.txt
/// ```
///
/// Beyond byte-stability this pins the tier's *behavior*: the committed
/// snapshot shows a shrink-window IPC dip with an energy spike, nonzero
/// retirement writebacks for every application whose working set
/// overflows the 2-MB L2, and recovery by the final window — if a
/// change flattens those transients, the diff in this golden is where
/// it shows.
/// The `sampling` error-vs-speedup study against its snapshot — also
/// opt-in (`--exp sampling`, never part of `all`). Regenerate with:
///
/// ```text
/// cargo run --release -p bench --bin repro -- --quick --exp sampling \
///     > tests/golden/sampling_quick.txt
/// ```
///
/// Beyond byte-stability this pins the sampler's *accuracy contract* at
/// quick scale: every 1/N-detail row must keep the sampled DA/SA ratio
/// equal to the full-run ratio to three decimals while the speedup
/// column climbs past 30×, and the IPC error must stay in single-digit
/// percent even at 1/40 detail. The report is bit-identical for any
/// thread count and any interval split (the interval stitch is
/// trace-ordered by construction — DESIGN.md §16), so a diff here means
/// the estimator, not the schedule, moved.
#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep is slow unoptimized; run under --release")]
fn sampling_study_report_matches_golden_snapshot() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweep = Sweep::new(Scale::quick()).with_threads(threads);
    let report = render_selection(&["sampling"], &sweep, false);
    if report != GOLDEN_SAMPLING {
        for (i, (got, want)) in report.lines().zip(GOLDEN_SAMPLING.lines()).enumerate() {
            assert_eq!(got, want, "sampling report diverges from golden at line {}", i + 1);
        }
        assert_eq!(report.len(), GOLDEN_SAMPLING.len(), "reports share lines but differ in length");
        unreachable!("reports differ but no diverging line found");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep is slow unoptimized; run under --release")]
fn dram_transient_report_matches_golden_snapshot() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweep = Sweep::new(Scale::quick()).with_threads(threads);
    let report = render_selection(&["dram"], &sweep, false);
    if report != GOLDEN_DRAM {
        for (i, (got, want)) in report.lines().zip(GOLDEN_DRAM.lines()).enumerate() {
            assert_eq!(got, want, "dram report diverges from golden at line {}", i + 1);
        }
        assert_eq!(report.len(), GOLDEN_DRAM.len(), "reports share lines but differ in length");
        unreachable!("reports differ but no diverging line found");
    }
}
