//! Golden end-to-end guard: the quick-scale reproduction report must be
//! byte-identical to the committed snapshot.
//!
//! This is the outermost layer of the differential test stack
//! (`tests/differential.rs` proves the flat-arena structures bit-identical
//! to the naive oracles; this test proves the *assembled system* — trace
//! generators, core, L1s, every L2 organization, the scheduler, and the
//! report renderers — produces exactly the output it did before any
//! hot-path rewrite). The snapshot was generated with:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- --quick --threads 4 \
//!     > tests/golden/repro_quick.txt
//! ```
//!
//! The report is bit-identical for any thread count, so the test runs on
//! however many workers the machine offers. To regenerate after an
//! *intentional* output change, rerun the command above and review the
//! diff — never regenerate to silence a failure you can't explain.

use experiments::repro::render_report;
use experiments::{exps::Sweep, Scale};

const GOLDEN: &str = include_str!("golden/repro_quick.txt");

/// Runs the full quick-scale sweep in-process and compares the rendered
/// report against the committed golden snapshot, byte for byte.
///
/// Ignored in debug builds (a full quick-scale sweep of 15 applications
/// is minutes of debug-mode simulation); run it with
/// `cargo test --release --test golden_repro`.
#[test]
#[cfg_attr(debug_assertions, ignore = "full sweep is slow unoptimized; run under --release")]
fn quick_report_matches_golden_snapshot() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweep = Sweep::new(Scale::quick()).with_threads(threads);
    let report = render_report(&sweep);
    if report != GOLDEN {
        // Find the first diverging line for a readable failure before the
        // full-text assert.
        for (i, (got, want)) in report.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(got, want, "report diverges from golden at line {}", i + 1);
        }
        assert_eq!(
            report.len(),
            GOLDEN.len(),
            "report and golden share {} lines but differ in length",
            GOLDEN.lines().count()
        );
        unreachable!("reports differ but no diverging line found");
    }
}
