//! Hot-set pressure: why decoupling data placement from tag placement
//! matters (the paper's Section 2.1 argument, Figure 4 in miniature).
//!
//! A "hot set" is a cache set with more frequently-accessed blocks than
//! coupled placement can keep in the fastest d-group (2 ways per d-group
//! in an 8-way cache over 4 d-groups). This example hammers a few hot
//! sets and compares where the hits land.
//!
//! ```text
//! cargo run --release --example hot_set_pressure
//! ```

use nurapid_suite::nurapid::coupled::CoupledCache;
use nurapid_suite::nurapid::{NuRapidCache, NuRapidConfig};
use nurapid_suite::simbase::rng::SimRng;
use nurapid_suite::simbase::{AccessKind, BlockAddr, Cycle};

/// Drives a hot-set workload: 6 live blocks in each of 64 sets, touched
/// uniformly.
fn drive(mut access: impl FnMut(BlockAddr, Cycle) -> bool) {
    let sets = 8 * 1024 * 1024 / 128 / 8; // 8192 sets
    let mut rng = SimRng::seeded(7);
    let mut t = Cycle::ZERO;
    for _ in 0..200_000 {
        let set = rng.below(64);
        let way = rng.below(6);
        let block = BlockAddr::from_index(set + way * sets);
        access(block, t);
        t += 40;
    }
}

fn main() {
    let mut decoupled = NuRapidCache::new(NuRapidConfig::micro2003(4));
    decoupled.prefill();
    drive(|b, t| decoupled.access_block(b, AccessKind::Read, t).hit);

    let mut coupled = CoupledCache::micro2003(4);
    coupled.prefill();
    drive(|b, t| coupled.access_block(b, AccessKind::Read, t).hit);

    println!("64 hot sets x 6 live blocks, 200K accesses\n");
    println!("{:<28} {:>10} {:>10}", "", "coupled", "decoupled");
    for g in 0..4 {
        println!(
            "{:<28} {:>9.1}% {:>9.1}%",
            format!("hits in d-group {g}"),
            coupled.stats().group_access_frac(g) * 100.0,
            decoupled.stats().group_access_frac(g) * 100.0
        );
    }
    println!(
        "{:<28} {:>9.1}% {:>9.1}%",
        "misses",
        coupled.stats().miss_frac() * 100.0,
        decoupled.stats().miss_frac() * 100.0
    );
    println!(
        "\nCoupled placement can keep only 2 of the 6 hot blocks per set in\n\
         the fastest d-group; distance associativity keeps essentially all\n\
         of them there (paper Section 2.1)."
    );
    assert!(
        decoupled.stats().group_access_frac(0) > coupled.stats().group_access_frac(0)
    );
}
