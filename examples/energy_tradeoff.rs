//! Energy trade-off: sequential tag-data access with few swaps vs
//! D-NUCA's searches and bubble swaps (the paper's 77%-lower-L2-energy
//! headline, on one workload).
//!
//! ```text
//! cargo run --release --example energy_tradeoff
//! ```

use nurapid_suite::cpu::uop::TraceSource;
use nurapid_suite::cpu::{CoreParams, OooCore};
use nurapid_suite::energy::l2;
use nurapid_suite::memsys::hierarchy::BaseHierarchy;
use nurapid_suite::memsys::l1::CoreMemSystem;
use nurapid_suite::nuca::{DnucaCache, DnucaConfig, SearchPolicy};
use nurapid_suite::nurapid::{NuRapidCache, NuRapidConfig};
use nurapid_suite::workloads::{profiles, TraceGenerator};

const INSTRUCTIONS: u64 = 400_000;

fn main() {
    let app = profiles::by_name("equake").expect("in roster");
    println!("workload: {} ({} instructions)\n", app.name, INSTRUCTIONS);
    println!(
        "{:<24} {:>14} {:>14} {:>12}",
        "organization", "L2 nJ/1K inst", "L2 accesses", "data-array ops"
    );

    // NuRAPID.
    {
        let mut cache = NuRapidCache::new(NuRapidConfig::micro2003(4));
        cache.prefill();
        let mut core = OooCore::new(CoreParams::micro2003(), CoreMemSystem::micro2003(cache));
        let mut gen = TraceGenerator::new(app, 9);
        for _ in 0..INSTRUCTIONS {
            let op = gen.next_op();
            core.execute(op);
        }
        let c = core.mem().lower();
        let e = l2::nurapid_energy(c.stats(), c.geometry());
        println!(
            "{:<24} {:>14.2} {:>14} {:>12}",
            "NuRAPID (4 d-groups)",
            e.nj() * 1000.0 / INSTRUCTIONS as f64,
            c.stats().accesses,
            c.stats().total_dgroup_accesses()
        );
    }

    // D-NUCA, both search policies.
    for (label, policy) in [
        ("D-NUCA ss-performance", SearchPolicy::SsPerformance),
        ("D-NUCA ss-energy", SearchPolicy::SsEnergy),
    ] {
        let mut cache = DnucaCache::new(DnucaConfig::micro2003(policy));
        cache.prefill();
        let mut core = OooCore::new(CoreParams::micro2003(), CoreMemSystem::micro2003(cache));
        let mut gen = TraceGenerator::new(app, 9);
        for _ in 0..INSTRUCTIONS {
            let op = gen.next_op();
            core.execute(op);
        }
        let c = core.mem().lower();
        let e = l2::dnuca_energy(c.stats(), c.geometry());
        println!(
            "{:<24} {:>14.2} {:>14} {:>12}",
            label,
            e.nj() * 1000.0 / INSTRUCTIONS as f64,
            c.stats().accesses,
            c.stats().total_bank_accesses()
        );
    }

    // Conventional hierarchy.
    {
        let mut cache = BaseHierarchy::micro2003();
        cache.prefill();
        let mut core = OooCore::new(CoreParams::micro2003(), CoreMemSystem::micro2003(cache));
        let mut gen = TraceGenerator::new(app, 9);
        for _ in 0..INSTRUCTIONS {
            let op = gen.next_op();
            core.execute(op);
        }
        let h = core.mem().lower();
        let e = l2::base_energy(h);
        println!(
            "{:<24} {:>14.2} {:>14} {:>12}",
            "base L2/L3",
            e.nj() * 1000.0 / INSTRUCTIONS as f64,
            h.l2_accesses(),
            "-"
        );
    }

    println!(
        "\nD-NUCA's multicast searches touch every bank position on every\n\
         access (ss-performance) or pay the smart-search array plus false\n\
         hits (ss-energy); NuRAPID probes one centralized tag array and one\n\
         d-group, and swaps far less (paper Sections 1 and 5.4)."
    );
}
