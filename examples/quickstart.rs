//! Quickstart: build the paper's NuRAPID cache, drive it by hand, and
//! watch distance placement at work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nurapid_suite::memsys::lower::LowerCache;
use nurapid_suite::nurapid::{NuRapidCache, NuRapidConfig};
use nurapid_suite::simbase::{AccessKind, BlockAddr, Cycle};

fn main() {
    // The evaluated configuration: 8 MB, 8-way, four 2-MB d-groups,
    // next-fastest promotion, random distance replacement.
    let mut cache = NuRapidCache::new(NuRapidConfig::micro2003(4));
    println!("NuRAPID: {} d-groups of {} frames", 4, cache.geometry().frames_per_dgroup());
    for g in 0..4 {
        println!(
            "  d-group {g}: {} cycles per hit, {:.2} nJ per data access",
            cache.geometry().dgroup_latency_cycles(g),
            cache.geometry().dgroup_access_energy(g).nj()
        );
    }

    // A cold miss fetches from memory and places the block in the
    // fastest d-group.
    let block = BlockAddr::from_index(0x42);
    let miss = cache.access(block, AccessKind::Read, Cycle::ZERO);
    println!(
        "\ncold miss completed at {} (8-cycle tag probe + 194-cycle memory fill)",
        miss.complete_at
    );

    // The re-access hits in d-group 0 at Table 4's 14-cycle latency.
    let t = Cycle::new(1_000);
    let hit = cache.access(block, AccessKind::Read, t);
    println!("warm hit: {} cycles", hit.complete_at - t);

    // Fill an entire hot set: with distance associativity, all 8 ways of
    // one set can live in the fastest d-group simultaneously — the very
    // thing coupled placement cannot do.
    let sets = 8 * 1024 * 1024 / 128 / 8;
    let mut t = Cycle::new(10_000);
    for way in 0..8u64 {
        let b = BlockAddr::from_index(7 + way * sets);
        let out = cache.access(b, AccessKind::Read, t);
        t = out.complete_at + 500;
    }
    for way in 0..8u64 {
        let b = BlockAddr::from_index(7 + way * sets);
        let out = cache.access(b, AccessKind::Read, t);
        assert!(out.hit);
        t = out.complete_at + 500;
    }
    let s = cache.stats();
    println!(
        "\nhot set: {} of the last 8 hits served by the fastest d-group",
        s.group_hits.count(0) - 1 // minus the quickstart hit above
    );
    println!(
        "totals: {} accesses, {} misses, {} promotions, {} demotions",
        s.accesses, s.misses, s.promotions, s.demotions
    );
    cache.check_invariants();
    println!("tag/data bijection verified");
}
