//! Policy sweep: one application across NuRAPID's promotion policies and
//! d-group counts, using the same experiment harness the paper figures
//! use.
//!
//! ```text
//! cargo run --release --example policy_sweep [app]
//! ```

use nurapid_suite::experiments::exps::{kind_of, Sweep};
use nurapid_suite::experiments::runner::run_app;
use nurapid_suite::experiments::Scale;
use nurapid_suite::workloads::profiles;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mgrid".into());
    let app = profiles::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown application {name:?}; choose one of: {}",
            profiles::ROSTER
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    });

    let scale = Scale {
        warmup: 400_000,
        measure: 600_000,
    };
    let base = run_app(app, &kind_of("base"), scale);
    println!(
        "{}: base IPC {:.2}, {:.1} L2 accesses / 1K instructions\n",
        app.name,
        base.ipc(),
        base.apki()
    );
    println!(
        "{:<34} {:>8} {:>9} {:>8} {:>8}",
        "configuration", "rel perf", "g0 hits", "swaps", "L2 nJ/KI"
    );
    let configs = [
        ("demotion-only, 4 d-groups", "dm4"),
        ("next-fastest, 4 d-groups", "nf4"),
        ("fastest, 4 d-groups", "fs4"),
        ("ideal (14-cycle hits)", "id4"),
        ("next-fastest, 2 d-groups", "nf2"),
        ("next-fastest, 8 d-groups", "nf8"),
        ("set-assoc placement, 4 d-groups", "sa4"),
        ("D-NUCA ss-performance", "dn-perf"),
    ];
    let sweep = Sweep::with_apps(scale, vec![app]);
    for (label, key) in configs {
        let r = sweep.run(app, key);
        println!(
            "{:<34} {:>8.3} {:>8.1}% {:>8} {:>8.2}",
            label,
            r.ipc() / base.ipc(),
            r.group_fracs.first().copied().unwrap_or(0.0) * 100.0,
            r.swaps,
            r.l2_energy.nj() * 1000.0 / r.core.instructions as f64
        );
    }
    println!(
        "\n(rel perf = IPC relative to the conventional 1-MB L2 + 8-MB L3\n\
         hierarchy; g0 hits = fraction of L2 accesses served by the fastest\n\
         d-group / bank position.)"
    );
}
