//! # nurapid-suite
//!
//! A full reproduction of **"Distance Associativity for High-Performance
//! Energy-Efficient Non-Uniform Cache Architectures"** (Chishti, Powell,
//! and Vijaykumar, MICRO 2003) as a Rust workspace.
//!
//! This facade crate re-exports every workspace member so examples and
//! downstream users can depend on one crate:
//!
//! * [`nurapid`] — the paper's contribution: the distance-associative
//!   cache with decoupled tag/data placement;
//! * [`nuca`] — the D-NUCA baseline it is evaluated against;
//! * [`memsys`], [`cpu`] — the memory-system and out-of-order-core
//!   substrates;
//! * [`cachemodel`], [`floorplan`] — the Cacti-like latency/energy model
//!   and the L-shaped physical layout;
//! * [`workloads`] — synthetic SPEC2K-like trace generators;
//! * [`energy`] — Wattch-like full-system energy accounting;
//! * [`experiments`] — the harness that regenerates every table and
//!   figure of the paper's evaluation;
//! * [`simsched`] — the deterministic parallel scheduler the harness
//!   runs on (worker pool, memoizing run store, resumable artifacts).
//!
//! # Quickstart
//!
//! ```
//! use nurapid_suite::nurapid::{NuRapidCache, NuRapidConfig};
//! use nurapid_suite::memsys::lower::LowerCache;
//! use nurapid_suite::simbase::{AccessKind, BlockAddr, Cycle};
//!
//! let mut cache = NuRapidCache::new(NuRapidConfig::micro2003(4));
//! let miss = cache.access(BlockAddr::from_index(1), AccessKind::Read, Cycle::ZERO);
//! assert!(!miss.hit);
//! let hit = cache.access(BlockAddr::from_index(1), AccessKind::Read, Cycle::new(1_000));
//! assert!(hit.hit); // 14 cycles: the fastest 2-MB d-group
//! ```
//!
//! See `examples/` for runnable scenarios and `repro` (in the `bench`
//! crate) for the full evaluation.

pub use cachemodel;
pub use cpu;
pub use energy;
pub use experiments;
pub use floorplan;
pub use memsys;
pub use nuca;
pub use nurapid;
pub use simbase;
pub use simsched;
pub use workloads;
